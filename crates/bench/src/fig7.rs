//! Fig. 7: live PMU events during SpMV execution on the Intel CSL system.
//!
//! Each of the five matrices is processed by Intel-MKL-style SpMV followed
//! by merge-based SpMV, on the original and RCM-reordered forms, while
//! P-MoVE captures SCALAR/AVX-512 FP instructions, total memory
//! instructions, and package power. Expected shapes (§V-D):
//! AVX-512 events only during MKL, scalar FP only during Merge; Merge
//! shows more memory instructions and higher power; the RCM pass finishes
//! ≈22 % faster end-to-end.

use pmove_core::profiles::spmv_profile;
use pmove_core::telemetry::pinning::PinningStrategy;
use pmove_core::telemetry::scenario_b::{recall_generic_total, ProfileRequest};
use pmove_core::PMoveDaemon;
use pmove_spmv::profile::SpmvAlgorithm;
use pmove_spmv::reorder::Reordering;
use pmove_spmv::suite::SuiteMatrix;

/// One execution's recalled metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecRow {
    /// Matrix name.
    pub matrix: String,
    /// Algorithm label.
    pub algo: String,
    /// Reordering label.
    pub reorder: String,
    /// Execution duration (s).
    pub duration_s: f64,
    /// Scalar double FP instructions recalled.
    pub scalar_instr: f64,
    /// AVX-512 double FP instructions recalled.
    pub avx512_instr: f64,
    /// Total memory operations recalled.
    pub mem_ops: f64,
    /// Mean package power (W).
    pub power_w: f64,
}

/// The whole experiment output.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// Per-execution rows (matrix × algorithm × reorder).
    pub rows: Vec<ExecRow>,
    /// Total time over all original-matrix executions.
    pub total_original_s: f64,
    /// Total time over all RCM executions.
    pub total_rcm_s: f64,
}

impl Fig7Result {
    /// RCM end-to-end improvement in percent.
    pub fn rcm_improvement_pct(&self) -> f64 {
        100.0 * (self.total_original_s - self.total_rcm_s) / self.total_original_s
    }
}

/// Generic events captured (the Fig. 7 panel set).
pub const EVENTS: [&str; 4] = [
    "SCALAR_DP_INSTRUCTIONS",
    "AVX512_DP_INSTRUCTIONS",
    "TOTAL_MEMORY_OPERATIONS",
    "RAPL_ENERGY_PKG",
];

/// Run the experiment at a matrix scale (1.0 reproduces the figure;
/// smaller scales for tests).
pub fn run(scale: f64) -> Fig7Result {
    let mut daemon = PMoveDaemon::for_preset("csl").expect("csl preset");
    let threads = daemon.machine.spec.total_cores();
    let mut rows = Vec::new();
    let mut totals = [0.0f64; 2]; // [original, rcm]

    for (ri, reorder) in [Reordering::None, Reordering::Rcm].iter().enumerate() {
        for m in SuiteMatrix::all() {
            let a = reorder.apply(&m.generate(scale));
            for algo in [SpmvAlgorithm::Mkl, SpmvAlgorithm::Merge] {
                // Calibrate iterations so each execution spans ~1 s.
                let per_iter_bytes = (a.nnz() as f64 * 2.5 + a.rows as f64) * 8.0;
                let target = daemon.machine.spec.dram_bw_total() * 1.0;
                let iterations = ((target / per_iter_bytes) as u64).max(1);
                let profile = spmv_profile(&a, algo, &daemon.machine.spec, threads, iterations);
                let request = ProfileRequest {
                    profile,
                    command: format!(
                        "spmv --algo {} --matrix {} --reorder {}",
                        algo.label(),
                        m.name(),
                        reorder.label()
                    ),
                    generic_events: EVENTS.iter().map(|s| s.to_string()).collect(),
                    freq_hz: 4.0,
                    pinning: PinningStrategy::Balanced,
                };
                let outcome = daemon.profile(&request).expect("profiling succeeds");
                let obs = &outcome.observation;
                let recall = |g: &str| {
                    recall_generic_total(&daemon.ts, &daemon.layer, "csl", g, &obs.id)
                        .unwrap_or(0.0)
                };
                let duration = outcome.execution.duration_s;
                rows.push(ExecRow {
                    matrix: m.name().to_string(),
                    algo: algo.label().to_string(),
                    reorder: reorder.label().to_string(),
                    duration_s: duration,
                    scalar_instr: recall("SCALAR_DP_INSTRUCTIONS"),
                    avx512_instr: recall("AVX512_DP_INSTRUCTIONS"),
                    mem_ops: recall("TOTAL_MEMORY_OPERATIONS"),
                    power_w: recall("RAPL_ENERGY_PKG") / duration,
                });
                totals[ri] += duration;
            }
        }
    }
    Fig7Result {
        rows,
        total_original_s: totals[0],
        total_rcm_s: totals[1],
    }
}

/// Render the experiment output.
pub fn format(r: &Fig7Result) -> String {
    let mut out = String::from("FIG 7: live PMU events during SpMV (CSL)\n");
    out.push_str(&format!(
        "{:<18} {:<6} {:<5} {:>9} {:>12} {:>12} {:>12} {:>8}\n",
        "Matrix", "Algo", "Ord", "Time s", "Scalar FP", "AVX512 FP", "Mem ops", "Power W"
    ));
    for row in &r.rows {
        out.push_str(&format!(
            "{:<18} {:<6} {:<5} {:>9.4} {:>12.3e} {:>12.3e} {:>12.3e} {:>8.1}\n",
            row.matrix,
            row.algo,
            row.reorder,
            row.duration_s,
            row.scalar_instr,
            row.avx512_instr,
            row.mem_ops,
            row.power_w
        ));
    }
    out.push_str(&format!(
        "total: original {:.3} s, rcm {:.3} s — RCM {:.1}% faster\n",
        r.total_original_s,
        r.total_rcm_s,
        r.rcm_improvement_pct()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn result() -> &'static Fig7Result {
        static CACHE: OnceLock<Fig7Result> = OnceLock::new();
        CACHE.get_or_init(|| run(2.0))
    }

    #[test]
    fn isa_contrast_between_algorithms() {
        let r = result();
        for row in &r.rows {
            if row.algo == "mkl" {
                assert!(
                    row.avx512_instr > 100.0 * row.scalar_instr.max(1.0),
                    "{row:?}"
                );
            } else {
                assert!(
                    row.scalar_instr > 100.0 * row.avx512_instr.max(1.0),
                    "{row:?}"
                );
            }
        }
    }

    #[test]
    fn merge_shows_more_memory_ops_and_power() {
        let r = result();
        for m in SuiteMatrix::all() {
            for ord in ["none", "rcm"] {
                let find = |algo: &str| {
                    r.rows
                        .iter()
                        .find(|x| x.matrix == m.name() && x.algo == algo && x.reorder == ord)
                        .unwrap()
                };
                let mkl = find("mkl");
                let merge = find("merge");
                assert!(
                    merge.mem_ops > mkl.mem_ops,
                    "{}: merge {} vs mkl {}",
                    m.name(),
                    merge.mem_ops,
                    mkl.mem_ops
                );
                assert!(
                    merge.power_w > mkl.power_w * 0.98,
                    "{}: merge {}W vs mkl {}W",
                    m.name(),
                    merge.power_w,
                    mkl.power_w
                );
            }
        }
    }

    #[test]
    fn rcm_pass_is_meaningfully_faster() {
        let r = result();
        let imp = r.rcm_improvement_pct();
        assert!(imp > 5.0, "rcm improvement only {imp}%");
        assert!(imp < 60.0, "rcm improvement implausibly high {imp}%");
    }

    #[test]
    fn every_combination_present() {
        let r = result();
        assert_eq!(r.rows.len(), 5 * 2 * 2);
        let text = format(r);
        assert!(text.contains("hugetrace-00020"));
        assert!(text.contains("RCM"));
    }
}
