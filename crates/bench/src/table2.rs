//! Table II: the four target platforms, as reported by the probing module.

use pmove_core::probe::ProbeReport;
use pmove_hwsim::Machine;

/// Probe summaries for all four presets.
pub fn run() -> Vec<ProbeReport> {
    ["skx", "icl", "csl", "zen3"]
        .iter()
        .map(|k| ProbeReport::collect(&Machine::preset(k).expect("preset exists")))
        .collect()
}

/// Render the table from the probe reports.
pub fn format(reports: &[ProbeReport]) -> String {
    let mut out = String::from("TABLE II: probed platform specifications\n");
    for r in reports {
        let j = &r.json;
        out.push_str(&format!(
            "[{}]\n  OS     {}\n  Kernel {}\n  CPU    {} ({}c/{}t)\n  Arch   {}\n  Mem    {} GB DDR4 @ {} MHz\n  Env    {}\n",
            r.hostname(),
            j["system"]["os"].as_str().unwrap_or("?"),
            j["system"]["kernel"].as_str().unwrap_or("?"),
            j["cpu"]["model"].as_str().unwrap_or("?"),
            j["cpu"]["cores_per_socket"].as_u64().unwrap_or(0)
                * j["cpu"]["sockets"].as_u64().unwrap_or(0),
            r.total_threads(),
            j["cpu"]["arch"].as_str().unwrap_or("?"),
            j["memory"]["total_gb"].as_u64().unwrap_or(0),
            j["memory"]["freq_mhz"].as_u64().unwrap_or(0),
            j["system"]["env"].as_str().unwrap_or("?"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_platforms_probe() {
        let reports = run();
        assert_eq!(reports.len(), 4);
        let text = format(&reports);
        assert!(text.contains("Intel Xeon Gold 6152"));
        assert!(text.contains("(44c/88t)"));
        assert!(text.contains("AMD EPYC 7313"));
        assert!(text.contains("Cascade Lake"));
        assert!(text.contains("1024 GB DDR4 @ 2666 MHz"));
    }
}
