//! Serving-layer load experiment: seeded open-loop Poisson arrivals
//! against the admission-controlled multi-tenant query front-end.
//!
//! Two runs drive the same populated store on the virtual clock, so
//! every number below is bit-identical across machines and reruns:
//!
//! * **steady** — [`TENANTS`] tenants render the same [`PANELS`]
//!   dashboard panels at an aggregate arrival rate far above one
//!   backend's sequential scan capacity. The layer survives because
//!   identical panels coalesce onto shared executions and the shared
//!   result cache absorbs repeat scans. Gated on conservation, a
//!   coalescing ratio of at least [`COALESCING_FLOOR`], both latency
//!   classes' p99 under the serving SLO, Jain fairness across tenants,
//!   and the burn-rate engine never leaving `ok`.
//! * **overload** — per-request disjoint time windows defeat both the
//!   cache and coalescing while a background-heavy flood overruns a
//!   deliberately small queue on two execution slots. Admission control
//!   must shed, every shed must land on background traffic, and
//!   interactive p99 must stay under the SLO anyway — that is what the
//!   weighted priority scheduler is for.

use pmove_obs::{AlertState, Registry, SloEngine, SloSpec};
use pmove_serve::{Priority, QueryServer, ServeReport, ServeRequest, ServingConfig};
use pmove_tsdb::{Database, Point};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Tenants generating load.
pub const TENANTS: u32 = 64;
/// Distinct dashboard panels (one measurement each).
pub const PANELS: usize = 8;
/// Steady-run aggregate arrival rate (requests/s of virtual time).
pub const STEADY_RATE_PER_S: f64 = 1_000_000.0;
/// Steady-run length (virtual ns).
pub const STEADY_DURATION_NS: u64 = 30_000_000;
/// Overload-run aggregate arrival rate (requests/s of virtual time).
pub const OVERLOAD_RATE_PER_S: f64 = 200_000.0;
/// Overload-run length (virtual ns).
pub const OVERLOAD_DURATION_NS: u64 = 20_000_000;
/// Gate: identical panels must coalesce at least this much.
pub const COALESCING_FLOOR: f64 = 4.0;
/// Fixed seed for the arrival process.
pub const SEED: u64 = 0x5EE7_1E55;

/// One serving run plus its SLO verdict.
#[derive(Debug, Clone)]
pub struct ServingCell {
    /// Run label (`steady`, `overload`).
    pub label: &'static str,
    /// The layer's own accounting.
    pub report: ServeReport,
    /// Whether the burn-rate engine ever left `ok` when replayed over
    /// the run's latency histogram.
    pub alerted: bool,
    /// Requests in the generated schedule (= `report.submitted`).
    pub offered: u64,
}

/// Both runs.
#[derive(Debug, Clone)]
pub struct ServingOutcome {
    /// The coalescing/cache-efficiency run.
    pub steady: ServingCell,
    /// The admission-control run.
    pub overload: ServingCell,
}

/// The store every run queries: [`PANELS`] measurements, 60 s of
/// per-second points from 4 hosts each.
pub fn build_store() -> Database {
    let db = Database::new("serving-bench");
    for panel in 0..PANELS {
        for s in 0..60i64 {
            for host in 0..4i64 {
                let p = Point::new(format!("panel{panel}"))
                    .timestamp(s * 1_000_000_000 + host)
                    .tag("host", format!("h{host}"))
                    .field(
                        "busy",
                        ((s * 7 + host * 13 + panel as i64 * 3) % 100) as f64,
                    );
                db.write_point(p).unwrap();
            }
        }
    }
    db
}

/// Open-loop Poisson schedule: exponential inter-arrival gaps at
/// `rate_per_s`, tenant and panel drawn uniformly, priority drawn with
/// `interactive_frac`. `mk_query` maps (panel, request index) to query
/// text, so callers choose between shared panels (coalescible) and
/// per-request windows (not).
pub fn poisson_schedule(
    seed: u64,
    duration_ns: u64,
    rate_per_s: f64,
    interactive_frac: f64,
    mk_query: impl Fn(usize, u64) -> String,
) -> Vec<ServeRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let rate_per_ns = rate_per_s / 1e9;
    let mut schedule = Vec::new();
    let mut t_ns = 0u64;
    let mut i = 0u64;
    loop {
        let u: f64 = rng.gen_range(0.0..1.0);
        let gap = (-(1.0 - u).ln() / rate_per_ns).ceil() as u64;
        t_ns += gap.max(1);
        if t_ns >= duration_ns {
            return schedule;
        }
        let tenant = (rng.next_u64() % u64::from(TENANTS)) as u32;
        let panel = (rng.next_u64() % PANELS as u64) as usize;
        let interactive = rng.gen_range(0.0..1.0) < interactive_frac;
        schedule.push(ServeRequest {
            tenant,
            priority: if interactive {
                Priority::Interactive
            } else {
                Priority::Background
            },
            query: mk_query(panel, i),
            at_ns: t_ns,
        });
        i += 1;
    }
}

/// Replay the run's latency histogram through the burn-rate engine at a
/// handful of post-run evaluation ticks; true when any window fired.
fn slo_alerted(reg: &Arc<Registry>, slo_p99_ns: u64, end_ns: u64) -> bool {
    let mut slo = SloEngine::new();
    slo.add(SloSpec::serving_p99(slo_p99_ns));
    let snap = reg.snapshot();
    for k in 0..6u64 {
        slo.evaluate(&snap, end_ns + k * 2_000_000_000);
        if slo.state("serving_p99") != Some(AlertState::Ok) {
            return true;
        }
    }
    false
}

/// Steady run: every request is one of the 8 shared panel scans.
pub fn run_steady(duration_ns: u64) -> ServingCell {
    let db = build_store();
    let cfg = ServingConfig {
        queue_capacity: 1024,
        max_concurrency: 4,
        tenant_rate_per_s: 50_000,
        tenant_burst: 4_000,
        tenant_cap: 256,
        ..ServingConfig::default()
    };
    let slo_p99_ns = cfg.slo_p99_ns;
    let schedule = poisson_schedule(SEED, duration_ns, STEADY_RATE_PER_S, 0.5, |panel, _| {
        format!("SELECT \"busy\" FROM \"panel{panel}\"")
    });
    let offered = schedule.len() as u64;
    let reg = Arc::new(Registry::new());
    let mut srv = QueryServer::new(&db, cfg).unwrap().with_obs(reg.clone());
    let report = srv.run(&schedule).unwrap();
    let alerted = slo_alerted(&reg, slo_p99_ns, report.end_ns);
    ServingCell {
        label: "steady",
        report,
        alerted,
        offered,
    }
}

/// Overload run: disjoint 10 s windows per request (nothing coalesces,
/// nothing caches), a background-heavy flood, two slots, a small queue.
pub fn run_overload(duration_ns: u64) -> ServingCell {
    let db = build_store();
    let cfg = ServingConfig {
        queue_capacity: 32,
        max_concurrency: 2,
        tenant_rate_per_s: 50_000,
        tenant_burst: 4_000,
        tenant_cap: 64,
        ..ServingConfig::default()
    };
    let slo_p99_ns = cfg.slo_p99_ns;
    let schedule = poisson_schedule(
        SEED ^ 0xBAD_10AD,
        duration_ns,
        OVERLOAD_RATE_PER_S,
        0.05,
        |panel, i| {
            // Shift each request's window by its index so every query
            // text (and thus cache key / coalescing key) is unique.
            let lo = (i % 50) * 1_000_000_000 + i;
            let hi = lo + 10_000_000_000;
            format!("SELECT \"busy\" FROM \"panel{panel}\" WHERE time >= {lo} AND time < {hi}")
        },
    );
    let offered = schedule.len() as u64;
    let reg = Arc::new(Registry::new());
    let mut srv = QueryServer::new(&db, cfg).unwrap().with_obs(reg.clone());
    let report = srv.run(&schedule).unwrap();
    let alerted = slo_alerted(&reg, slo_p99_ns, report.end_ns);
    ServingCell {
        label: "overload",
        report,
        alerted,
        offered,
    }
}

/// Run both cells. `scale` shrinks the virtual durations (CI smoke runs
/// pass 0.1; the pinned results use 1.0).
pub fn run(scale: f64) -> ServingOutcome {
    let steady = run_steady((STEADY_DURATION_NS as f64 * scale) as u64);
    let overload = run_overload((OVERLOAD_DURATION_NS as f64 * scale) as u64);
    ServingOutcome { steady, overload }
}

/// Render both runs as one deterministic table plus the gate lines.
pub fn format(out: &ServingOutcome) -> String {
    let mut s =
        String::from("SERVING: open-loop Poisson load over the multi-tenant query front-end\n");
    s.push_str(&format!(
        "{TENANTS} tenants x {PANELS} panels, seeded arrivals on the virtual clock\n",
    ));
    s.push_str(&format!(
        "{:<9} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6} {:>10} {:>10} {:>6} {:>6}\n",
        "run",
        "submit",
        "reject",
        "served",
        "shed",
        "exec",
        "coalX",
        "cache%",
        "fair",
        "peakQ",
        "p99int_us",
        "p99bg_us",
        "errs",
        "alert"
    ));
    for cell in [&out.steady, &out.overload] {
        let r = &cell.report;
        s.push_str(&format!(
            "{:<9} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6.2} {:>7.2} {:>7.4} {:>6} {:>10.1} {:>10.1} {:>6} {:>6}\n",
            cell.label,
            r.submitted,
            r.rejected,
            r.served,
            r.shed,
            r.executions,
            r.coalescing_ratio(),
            100.0 * r.cache_hit_rate(),
            r.fairness_served(),
            r.queue_depth_peak,
            r.interactive.p99_ns as f64 / 1_000.0,
            r.background.p99_ns as f64 / 1_000.0,
            r.errors,
            if cell.alerted { "FIRED" } else { "ok" },
        ));
    }
    let ov = &out.overload.report;
    let bg_sheds = ov
        .shed_events
        .iter()
        .filter(|e| e.priority == Priority::Background)
        .count();
    s.push_str(&format!(
        "overload sheds: {} total, {} background, lowest-priority-only: {}\n",
        ov.shed_events.len(),
        bg_sheds,
        if ov.shed_only_lowest() { "yes" } else { "NO" },
    ));
    s.push_str(&format!(
        "conservation: steady {} overload {}\n",
        if out.steady.report.conserved() {
            "ok"
        } else {
            "VIOLATED"
        },
        if ov.conserved() { "ok" } else { "VIOLATED" },
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_load_coalesces_and_holds_the_slo() {
        let cell = run_steady(STEADY_DURATION_NS);
        let r = &cell.report;
        assert!(r.conserved(), "{r:?}");
        assert_eq!(r.submitted, cell.offered);
        assert_eq!(r.rejected, 0, "steady load must clear admission");
        assert_eq!(r.shed, 0, "steady load must not shed");
        assert_eq!(r.errors, 0);
        assert!(
            r.coalescing_ratio() >= COALESCING_FLOOR,
            "coalescing ratio {:.2} under the {COALESCING_FLOOR}x floor",
            r.coalescing_ratio()
        );
        assert!(
            r.cache_hit_rate() > 0.9,
            "shared panels must ride the result cache: {:.3}",
            r.cache_hit_rate()
        );
        let slo = ServingConfig::default().slo_p99_ns;
        assert!(r.interactive.p99_ns < slo, "{:?}", r.interactive);
        assert!(r.background.p99_ns < slo, "{:?}", r.background);
        assert!(!cell.alerted, "steady run must not page");
        assert!(
            r.fairness_served() > 0.95,
            "uniform tenants must be served fairly: {:.4}",
            r.fairness_served()
        );
    }

    #[test]
    fn overload_sheds_background_only_and_protects_interactive() {
        let cell = run_overload(OVERLOAD_DURATION_NS);
        let r = &cell.report;
        assert!(r.conserved(), "{r:?}");
        assert!(r.shed > 0, "the flood must actually overload the queue");
        assert!(
            r.shed_events
                .iter()
                .all(|e| e.priority == Priority::Background),
            "an interactive request was shed"
        );
        assert!(r.shed_only_lowest());
        // Priority scheduling keeps the interactive class inside the SLO
        // even while background floods the queue.
        assert!(r.interactive.count > 0);
        let slo = ServingConfig::default().slo_p99_ns;
        assert!(r.interactive.p99_ns < slo, "{:?}", r.interactive);
    }

    #[test]
    fn serving_runs_are_deterministic() {
        let a = run(0.2);
        let b = run(0.2);
        assert_eq!(format(&a), format(&b));
        assert_eq!(a.steady.report, b.steady.report);
        assert_eq!(a.overload.report, b.overload.report);
    }
}
