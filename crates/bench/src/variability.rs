//! Performance-variability study (extension).
//!
//! The paper's opening sentence motivates P-MoVE with variability from
//! "load imbalances, CPU throttling, reduced frequency, shared resource
//! contention". With the DVFS model enabled, the same FP workload
//! compiled for different vector widths lands at visibly different
//! effective frequencies — and the monitoring stack sees it: the
//! CPU_CYCLES rate per thread drops while FLOP throughput rises.

use pmove_hwsim::kernel_profile::{KernelProfile, Precision};
use pmove_hwsim::{ExecModel, MachineSpec, Quantity};

/// One ISA variant's outcome under DVFS.
#[derive(Debug, Clone, PartialEq)]
pub struct VariabilityRow {
    /// ISA the kernel was compiled for.
    pub isa: &'static str,
    /// Effective core clock (GHz).
    pub clock_ghz: f64,
    /// Run time (s).
    pub duration_s: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Observed cycles-per-second per active thread (what a monitoring
    /// stack derives from CPU_CYCLES — the throttling fingerprint).
    pub cycles_rate_per_thread: f64,
}

/// Run the same FP workload at every ISA width on a machine, DVFS on.
pub fn isa_sweep(spec: &MachineSpec) -> Vec<VariabilityRow> {
    let model = ExecModel::new(spec.clone()).with_dvfs();
    let threads = spec.total_cores();
    let flops: u64 = 1 << 38;
    spec.arch
        .isa_extensions()
        .iter()
        .map(|&isa| {
            let profile = KernelProfile::named(format!("var_{}", isa.label()))
                .with_threads(threads)
                .with_flops(isa, Precision::F64, flops)
                .with_mem(1 << 16, 0, isa)
                .with_working_set(16 << 10);
            let clock = model.clock_ghz(&profile);
            let exec = model.run(&profile, 0.0);
            let cycles = exec.quantity_total(Quantity::Cycles);
            VariabilityRow {
                isa: isa.label(),
                clock_ghz: clock,
                duration_s: exec.duration_s,
                gflops: exec.gflops(),
                cycles_rate_per_thread: cycles / exec.duration_s / threads as f64,
            }
        })
        .collect()
}

/// The end-to-end variability this mechanism alone creates: max/min run
/// time across ISA variants of the *same* logical workload.
pub fn runtime_spread(rows: &[VariabilityRow]) -> f64 {
    let max = rows.iter().map(|r| r.duration_s).fold(0.0, f64::max);
    let min = rows
        .iter()
        .map(|r| r.duration_s)
        .fold(f64::INFINITY, f64::min);
    max / min
}

/// Render the study.
pub fn format(spec_key: &str, rows: &[VariabilityRow]) -> String {
    let mut out = format!("VARIABILITY (DVFS on, {spec_key}): same FP work per ISA width\n");
    out.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>10}\n",
        "ISA", "clock GHz", "time s", "GF/s"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>10.2} {:>10.4} {:>10.1}\n",
            r.isa, r.clock_ghz, r.duration_s, r.gflops
        ));
    }
    out.push_str(&format!(
        "runtime spread (max/min): {:.1}x\n",
        runtime_spread(rows)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmove_hwsim::dvfs;
    use pmove_hwsim::vendor::IsaExt;

    #[test]
    fn wider_isa_throttles_clock_but_still_wins() {
        let rows = isa_sweep(&MachineSpec::csl());
        assert_eq!(rows.len(), 4);
        // Clock monotonically drops with width…
        for w in rows.windows(2) {
            assert!(w[0].clock_ghz >= w[1].clock_ghz);
        }
        let scalar = &rows[0];
        let avx512 = rows.last().unwrap();
        assert!(avx512.clock_ghz < scalar.clock_ghz * 0.9);
        // …but throughput still rises strongly (throttled AVX-512 beats
        // full-clock scalar by far).
        assert!(avx512.gflops > 4.0 * scalar.gflops);
        // The monitoring fingerprint: cycle rate per thread drops.
        assert!(avx512.cycles_rate_per_thread < scalar.cycles_rate_per_thread);
    }

    #[test]
    fn throttling_alone_creates_large_runtime_spread() {
        // The paper's motivation: frequency effects alone produce multi-x
        // differences for the same logical FP work.
        let rows = isa_sweep(&MachineSpec::csl());
        assert!(runtime_spread(&rows) > 4.0);
    }

    #[test]
    fn zen3_sweep_has_three_isas_and_mild_throttling() {
        let rows = isa_sweep(&MachineSpec::zen3());
        assert_eq!(rows.len(), 3);
        let scalar = &rows[0];
        let avx2 = rows.last().unwrap();
        assert!(avx2.clock_ghz > scalar.clock_ghz * 0.95);
    }

    #[test]
    fn dvfs_clock_matches_dvfs_module() {
        let spec = MachineSpec::csl();
        let model = ExecModel::new(spec.clone()).with_dvfs();
        let p = KernelProfile::named("x")
            .with_threads(28)
            .with_flops(IsaExt::Avx512, Precision::F64, 1 << 30)
            .with_mem(1, 0, IsaExt::Avx512);
        assert_eq!(model.clock_ghz(&p), dvfs::effective_frequency(&spec, &p));
    }

    #[test]
    fn format_reports_spread() {
        let text = format("csl", &isa_sweep(&MachineSpec::csl()));
        assert!(text.contains("runtime spread"));
        assert!(text.contains("avx512"));
    }
}
