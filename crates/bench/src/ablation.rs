//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **shipping capacity** — how Table III's losses respond to the
//!    end-to-end service capacity (the knob the 100 Mbit link + InfluxDB
//!    insert path sets);
//! 2. **counter multiplexing** — measurement error as the programmed
//!    event count exceeds the per-thread counter bank;
//! 3. **merge-path vs row-split partitioning** — worker load skew on
//!    row-length-skewed matrices.

use pmove_hwsim::noise::NoiseSource;
use pmove_hwsim::pmu::CounterBank;
use pmove_spmv::merge::merge_partition_work;
use pmove_spmv::row::row_chunk_work;
use pmove_spmv::suite::SuiteMatrix;

// ---------------------------------------------------------------------
// 1. Shipping capacity sweep
// ---------------------------------------------------------------------

/// Loss behaviour of the skx 32 Hz × 6-metric cell at one capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPoint {
    /// Shipper capacity in values/s.
    pub capacity: f64,
    /// %L of the cell.
    pub loss_pct: f64,
    /// L+Z% of the cell.
    pub loss_plus_zero_pct: f64,
}

/// Sweep the end-to-end capacity and re-run the hottest Table III cell.
pub fn capacity_sweep(capacities: &[f64]) -> Vec<CapacityPoint> {
    use pmove_hwsim::network::LinkSpec;
    use pmove_hwsim::{ExecModel, Machine};
    use pmove_pcp::pmda_perfevent::PerfEventAgent;
    use pmove_pcp::{Pmcd, SamplingConfig, SamplingLoop, Shipper};
    use pmove_tsdb::Database;

    capacities
        .iter()
        .map(|&capacity| {
            let machine = Machine::preset("skx").expect("skx preset");
            let events = crate::table3::busy_metrics(&machine, 6);
            let refs: Vec<&str> = events.iter().map(String::as_str).collect();
            let mut agent = PerfEventAgent::new(machine.spec.clone(), &refs);
            agent.freq_hz = 32.0;
            let profile = {
                use pmove_hwsim::kernel_profile::{KernelProfile, Precision};
                let elems = (machine.spec.dram_bw_total() * 15.0 / 8.0) as u64;
                KernelProfile::named("ablation_busy")
                    .with_threads(machine.spec.total_threads())
                    .with_flops(machine.spec.arch.widest_isa(), Precision::F64, elems)
                    .with_mem(elems, elems / 3, machine.spec.arch.widest_isa())
                    .with_working_set(1 << 34)
            };
            agent.attach(ExecModel::new(machine.spec.clone()).run(&profile, 0.0));

            let db = Database::new("ablation");
            let mut shipper = Shipper::new(
                &db,
                LinkSpec::mbit_100(),
                1.0 / 32.0,
                &["ablation", &capacity.to_string()],
            );
            shipper.capacity_values_per_s = capacity;
            let mut pmcd = Pmcd::new();
            pmcd.register(Box::new(agent));
            let metrics: Vec<String> = events
                .iter()
                .map(|e| format!("perfevent.hwcounters.{e}"))
                .collect();
            let report = SamplingLoop::run(
                &SamplingConfig::new(metrics, 32.0, 0.0, 10.0),
                &mut pmcd,
                &mut shipper,
            );
            CapacityPoint {
                capacity,
                loss_pct: 100.0
                    * (report.expected_values
                        - report.transport.values_inserted
                        - report.transport.values_zeroed) as f64
                    / report.expected_values as f64,
                loss_plus_zero_pct: 100.0
                    * ((report.expected_values
                        - report.transport.values_inserted
                        - report.transport.values_zeroed)
                        + report.transport.values_zeroed) as f64
                    / report.expected_values as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// 2. Counter multiplexing error
// ---------------------------------------------------------------------

/// Mean absolute relative error of reading a true count of 1e6 through a
/// 4-counter bank programmed with `n_events`, over `trials` reads.
pub fn multiplexing_error(n_events: usize, trials: usize) -> f64 {
    let mut bank = CounterBank::with_capacity(4);
    for i in 0..n_events {
        bank.program(&format!("EV{i}"));
    }
    let mut noise = NoiseSource::from_labels(&["ablation", "mux", &n_events.to_string()]);
    let truth = 1.0e6;
    (0..trials)
        .map(|_| {
            let observed = bank.observed_count(truth, noise.uniform());
            (observed - truth).abs() / truth
        })
        .sum::<f64>()
        / trials as f64
}

// ---------------------------------------------------------------------
// 3. Partitioning skew
// ---------------------------------------------------------------------

/// Max/mean work skew of the two partitioners on a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewPoint {
    /// Worker count.
    pub workers: usize,
    /// Row-chunk skew (max/mean of nnz per chunk).
    pub row_skew: f64,
    /// Merge-path skew (max/mean of path elements per partition).
    pub merge_skew: f64,
}

/// Sweep worker counts on the skewed `human_gene1` stand-in.
pub fn partition_skew(workers: &[usize]) -> Vec<SkewPoint> {
    let a = SuiteMatrix::HumanGene1.generate(1.0);
    workers
        .iter()
        .map(|&w| {
            let rw = row_chunk_work(&a, w);
            let mw = merge_partition_work(&a, w);
            let skew = |v: &[u64]| {
                let max = *v.iter().max().expect("non-empty") as f64;
                let mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
                max / mean
            };
            SkewPoint {
                workers: w,
                row_skew: skew(&rw),
                merge_skew: skew(&mw),
            }
        })
        .collect()
}

/// Render all three ablations.
pub fn format_all() -> String {
    let mut out =
        String::from("ABLATIONS\n\n[1] shipping capacity vs losses (skx, 32 Hz, 6 metrics)\n");
    out.push_str(&format!("{:>12} {:>8} {:>8}\n", "values/s", "%L", "L+Z%"));
    for p in capacity_sweep(&[4_000.0, 8_000.0, 11_000.0, 16_000.0, 24_000.0, 48_000.0]) {
        out.push_str(&format!(
            "{:>12.0} {:>8.1} {:>8.1}\n",
            p.capacity, p.loss_pct, p.loss_plus_zero_pct
        ));
    }
    out.push_str("\n[2] counter multiplexing error (4 programmable counters)\n");
    out.push_str(&format!("{:>8} {:>12}\n", "#events", "|err|%"));
    for n in [2usize, 4, 6, 8, 12] {
        out.push_str(&format!(
            "{n:>8} {:>12.3}\n",
            100.0 * multiplexing_error(n, 2000)
        ));
    }
    out.push_str("\n[3] partition skew on human_gene1 (max/mean work)\n");
    out.push_str(&format!(
        "{:>8} {:>10} {:>11}\n",
        "workers", "row-split", "merge-path"
    ));
    for p in partition_skew(&[4, 8, 16, 32, 64]) {
        out.push_str(&format!(
            "{:>8} {:>10.3} {:>11.3}\n",
            p.workers, p.row_skew, p.merge_skew
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn losses_fall_as_capacity_rises() {
        let sweep = capacity_sweep(&[5_000.0, 11_000.0, 48_000.0]);
        assert!(sweep[0].loss_pct > sweep[1].loss_pct);
        assert!(sweep[1].loss_pct > sweep[2].loss_pct);
        // At very high capacity only zeros remain.
        assert!(sweep[2].loss_pct < 1.0, "{:?}", sweep[2]);
        assert!(sweep[2].loss_plus_zero_pct > 10.0);
    }

    #[test]
    fn multiplexing_error_grows_with_event_count() {
        let e4 = multiplexing_error(4, 1000);
        let e8 = multiplexing_error(8, 1000);
        let e12 = multiplexing_error(12, 1000);
        assert!(e4 < 1e-12, "no multiplexing, no error: {e4}");
        assert!(e8 > e4);
        assert!(e12 > e8);
    }

    #[test]
    fn merge_path_always_flatter_than_row_split() {
        for p in partition_skew(&[8, 32]) {
            assert!(
                p.merge_skew < p.row_skew,
                "workers {}: merge {} vs row {}",
                p.workers,
                p.merge_skew,
                p.row_skew
            );
            assert!(p.merge_skew < 1.05);
        }
    }

    #[test]
    fn format_renders_everything() {
        let text = format_all();
        assert!(text.contains("[1] shipping capacity"));
        assert!(text.contains("[2] counter multiplexing"));
        assert!(text.contains("[3] partition skew"));
    }
}
