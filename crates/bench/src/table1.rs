//! Table I: the same generic event on Intel Cascade Lake vs AMD Zen 3 —
//! identical, similar, different, and exclusive event names, resolved
//! through the abstraction layer.

use pmove_core::abstraction::presets::builtin_layer;
use pmove_core::abstraction::AbstractionLayer;

/// One comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Generic event compared.
    pub generic: String,
    /// Formula on Intel Cascade Lake (`csl`), if mapped.
    pub intel: Option<String>,
    /// Formula on AMD Zen3, if mapped.
    pub amd: Option<String>,
}

/// The Table I rows (Energy, Total Memory Operations, L3 Hit) plus the
/// rest of the common set for completeness.
pub fn run() -> Vec<Row> {
    let layer = builtin_layer();
    let generics = [
        "RAPL_ENERGY_PKG",
        "RAPL_ENERGY_DRAM",
        "TOTAL_MEMORY_OPERATIONS",
        "L3_HIT",
        "CPU_CYCLES",
        "RETIRED_INSTRUCTIONS",
        "TOTAL_DP_FLOPS",
        "L1_CACHE_DATA_MISS",
        "FP_DIV_RETIRED",
        "AVX512_DP_FLOPS",
    ];
    generics
        .iter()
        .map(|g| Row {
            generic: g.to_string(),
            intel: formula(&layer, "csl", g),
            amd: formula(&layer, "zen3", g),
        })
        .collect()
}

fn formula(layer: &AbstractionLayer, pmu: &str, generic: &str) -> Option<String> {
    layer.formula(pmu, generic).ok().map(|f| f.to_string())
}

/// Render the table.
pub fn format(rows: &[Row]) -> String {
    let mut out =
        String::from("TABLE I: Intel (Cascade Lake) vs AMD (Zen3) PMU events per generic event\n");
    out.push_str(&format!(
        "{:<26} | {:<58} | {}\n",
        "Generic event", "Intel Cascade", "AMD Zen3"
    ));
    out.push_str(&"-".repeat(140));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<26} | {:<58} | {}\n",
            r.generic,
            r.intel.as_deref().unwrap_or("Not Supported"),
            r.amd.as_deref().unwrap_or("Not Supported"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_reproduce_table1_classes() {
        let rows = run();
        let by_name = |n: &str| rows.iter().find(|r| r.generic == n).unwrap();
        // Same on both vendors.
        let energy = by_name("RAPL_ENERGY_PKG");
        assert_eq!(energy.intel, energy.amd);
        // Different names for the same semantics.
        let mem = by_name("TOTAL_MEMORY_OPERATIONS");
        assert!(mem.intel.as_deref().unwrap().contains("MEM_INST_RETIRED"));
        assert!(mem.amd.as_deref().unwrap().contains("LS_DISPATCH"));
        // Exclusive: L3 hit AMD-only, DRAM energy AMD-only, AVX-512 Intel-only.
        let l3 = by_name("L3_HIT");
        assert!(l3.intel.is_none());
        assert!(l3.amd.as_deref().unwrap().contains("LONGEST_LAT_CACHE"));
        assert!(by_name("RAPL_ENERGY_DRAM").intel.is_none());
        assert!(by_name("AVX512_DP_FLOPS").amd.is_none());
    }

    #[test]
    fn format_marks_unsupported() {
        let text = format(&run());
        assert!(text.contains("Not Supported"));
        assert!(text.contains("LS_DISPATCH:STORE_DISPATCH + LS_DISPATCH:LD_DISPATCH"));
    }
}
