//! Backup & disaster-recovery experiment: snapshot-accelerated restore
//! vs. full WAL-archive replay, archiver ingest overhead, and the
//! scheduled restore drill.
//!
//! A durable store ingests a long row stream with the continuous WAL
//! archiver attached; one snapshot generation is captured late in the
//! stream (so the snapshot fast path has a real tail to skip). The gates
//! are: (1) a point-in-time restore from the snapshot replays at least
//! 5x fewer archived records — and runs at least 5x faster — than the
//! replay-everything baseline, while agreeing with it bit-for-bit;
//! (2) attaching the archiver costs < 5% ingest wall time; (3) the
//! daemon's scheduled restore drill reports a bit-exact restore with a
//! balanced conservation ledger and zero backup errors.

use pmove_core::telemetry::PMoveDaemon;
use pmove_tsdb::store::{
    restore_at, restore_replay_all, ColumnValue, MemDisk, RowRecord, StoreOptions, TsStore, Vfs,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Commit batches in the full experiment (smoke mode divides by 10).
const BATCHES: u64 = 12_000;
/// Rows per commit batch.
const ROWS_PER_BATCH: usize = 8;
/// Flush cadence in batches: spreads data over many chunks.
const FLUSH_EVERY: u64 = 50;
/// Snapshot point as a fraction of the stream: late, so the snapshot
/// restore skips ~19/20 of the archive.
const SNAP_NUM: u64 = 19;
const SNAP_DEN: u64 = 20;
/// Timing repetitions; the minimum is reported (standard noise floor).
/// Ingest pairs are interleaved plain/backup so both variants sample the
/// same machine conditions.
const REPS: usize = 7;

/// True when `PMOVE_BENCH_SMOKE=1`: shrink the workload for CI smoke.
pub fn smoke() -> bool {
    std::env::var("PMOVE_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn batches() -> u64 {
    if smoke() {
        BATCHES / 10
    } else {
        BATCHES
    }
}

/// One row of the backup/DR table.
#[derive(Debug, Clone)]
pub struct BackupCell {
    /// Rows offered to the store.
    pub rows_ingested: u64,
    /// Snapshot generations captured.
    pub generations: u64,
    /// Records the continuous archiver shipped.
    pub records_archived: u64,
    /// Ingest wall time without the archiver (ms, min of reps).
    pub ingest_plain_ms: f64,
    /// Ingest wall time with the archiver attached (ms, min of reps).
    pub ingest_backup_ms: f64,
    /// Archiver ingest overhead in percent: median of per-pair
    /// back-to-back wall-time ratios (robust to machine-load drift).
    pub overhead_pct: f64,
    /// Snapshot-path restore wall time (ms, min of reps).
    pub restore_snap_ms: f64,
    /// Replay-everything restore wall time (ms, min of reps).
    pub restore_full_ms: f64,
    /// Wall-time speedup of the snapshot path.
    pub speedup: f64,
    /// Archived records the snapshot path replayed.
    pub snap_replayed: u64,
    /// Archived records the baseline replayed (all of them).
    pub full_replayed: u64,
    /// Rows in the restored store.
    pub restored_rows: u64,
    /// Snapshot and baseline restores agree with the live store,
    /// `f64::to_bits` for bit.
    pub bit_identical: bool,
    /// Both restores' conservation ledgers balanced.
    pub conserved: bool,
    /// Scheduled daemon drill: ran, bit-exact, zero backup errors.
    pub drill_ok: bool,
}

/// Deterministic value stream (SplitMix64).
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn batch(b: u64, seed: &mut u64) -> Vec<RowRecord> {
    (0..ROWS_PER_BATCH)
        .map(|i| {
            RowRecord::new(
                format!("s{}", next(seed) % 16),
                format!("f{}", i % 4),
                b as i64 * 100 + i as i64,
                ColumnValue::F64((next(seed) % 1_000_000) as f64 / 7.0),
            )
        })
        .collect()
}

fn opts() -> StoreOptions {
    StoreOptions {
        flush_threshold_rows: 1_000_000,
        compact_min_chunks: 1_000_000,
    }
}

/// Drive the ingest schedule once; `backup` attaches the archiver and
/// captures one late snapshot generation. Returns (store, dest, wall ms).
fn ingest(seed: u64, backup: bool) -> (TsStore, MemDisk, f64) {
    let n = batches();
    let primary = MemDisk::new(seed | 1);
    let dest = MemDisk::new((seed ^ 0xBACC) | 1);
    let (mut store, _) = TsStore::open(Arc::new(primary), opts()).unwrap();
    if backup {
        store
            .enable_backup(Arc::new(dest.clone()) as Arc<dyn Vfs>)
            .unwrap();
        // The daemon's production setting: group archival every 32
        // commits, drained at flushes and snapshot fences.
        store.set_archive_group(32);
    }
    let snap_at = n * SNAP_NUM / SNAP_DEN;
    let mut value_seed = seed;
    let mut excluded = std::time::Duration::ZERO;
    let t0 = Instant::now();
    for b in 0..n {
        if backup {
            store.note_time((b as i64 + 1) * 1_000);
        }
        store.append(&batch(b, &mut value_seed));
        store.commit().unwrap();
        if (b + 1) % FLUSH_EVERY == 0 {
            store.flush().unwrap();
        }
        if backup && b == snap_at {
            // The snapshot is a separately scheduled job (the daemon
            // stamps it as its own `daemon.backup` span); the overhead
            // gate measures the continuous archiver tax on the write
            // path, so the capture itself is excluded from the clock.
            let s = Instant::now();
            store.backup_now().unwrap();
            excluded += s.elapsed();
        }
    }
    let ms = (t0.elapsed() - excluded).as_secs_f64() * 1e3;
    (store, dest, ms)
}

/// Last-write-wins cell map with float bits as the fingerprint.
fn cells(store: &mut TsStore) -> BTreeMap<(String, String, i64), u64> {
    let mut m = BTreeMap::new();
    for r in store.scan().unwrap() {
        let bits = match r.value {
            ColumnValue::F64(x) => x.to_bits(),
            _ => 0,
        };
        m.insert((r.series, r.field, r.ts), bits);
    }
    m
}

/// Run the full experiment: overhead timing, restore race, daemon drill.
pub fn run() -> BackupCell {
    // Ingest overhead: same schedule with and without the archiver.
    // Each rep runs the two variants back-to-back so both sample the
    // same machine conditions; the overhead is the median of the
    // per-pair ratios (pairing cancels slow-window drift, the median
    // rejects outlier pairs). The displayed wall times are the per-
    // variant minima over all reps.
    let mut plain_ms = f64::INFINITY;
    let mut backup_ms = f64::INFINITY;
    let mut ratios = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let seed = 0xBAC2_0000 + rep as u64;
        let p = ingest(seed, false).2;
        let b = ingest(seed, true).2;
        plain_ms = plain_ms.min(p);
        backup_ms = backup_ms.min(b);
        ratios.push(b / p);
    }
    ratios.sort_by(f64::total_cmp);
    let overhead_pct = (ratios[REPS / 2] - 1.0) * 100.0;

    // Restore race on one backed-up run: snapshot fast path vs
    // replay-everything baseline, same destination bytes.
    let (mut live, dest, _) = ingest(0xBAC2_F00D, true);
    let stats = live.backup_stats().expect("archiver attached");
    let mut snap_ms = f64::INFINITY;
    let mut full_ms = f64::INFINITY;
    let mut snap_report = None;
    let mut full_report = None;
    const RESTORE_REPS: usize = 3;
    for rep in 0..RESTORE_REPS {
        let scratch = MemDisk::new(0x51AB + rep as u64);
        let t0 = Instant::now();
        let r = restore_at(&dest, Arc::new(scratch.clone()) as Arc<dyn Vfs>, i64::MAX).unwrap();
        snap_ms = snap_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        if rep + 1 == RESTORE_REPS {
            let (mut s, _) = TsStore::open(Arc::new(scratch), opts()).unwrap();
            snap_report = Some((r, cells(&mut s)));
        }
        let scratch = MemDisk::new(0x00F0_11AB + rep as u64);
        let t0 = Instant::now();
        let r =
            restore_replay_all(&dest, Arc::new(scratch.clone()) as Arc<dyn Vfs>, i64::MAX).unwrap();
        full_ms = full_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        if rep + 1 == RESTORE_REPS {
            let (mut s, _) = TsStore::open(Arc::new(scratch), opts()).unwrap();
            full_report = Some((r, cells(&mut s)));
        }
    }
    let (snap_report, snap_cells) = snap_report.unwrap();
    let (full_report, full_cells) = full_report.unwrap();
    let live_cells = cells(&mut live);
    let bit_identical = snap_cells == live_cells && full_cells == live_cells;

    // Scheduled drill through the daemon: periodic backups on the
    // monitor loop, restore-into-scratch, bit-exact diff.
    let disk = Arc::new(MemDisk::new(0xD211));
    let vfs: Arc<dyn Vfs> = disk;
    let mut d = PMoveDaemon::for_preset_durable("icl", vfs).unwrap();
    let drill_ok = if d.enable_backups(10.0) {
        d.drill_every_backups = 2;
        d.install_default_slos();
        for _ in 0..6 {
            d.monitor(5.0, 2.0);
        }
        let explicit = d.restore_drill() == Some(true);
        let snap = d.obs.snapshot();
        let gauge_ok = snap.gauge("daemon.drill.bit_exact", &[]) == Some(1.0);
        let errors = d.ts.backup_stats().map_or(1, |s| s.backup_errors);
        explicit && gauge_ok && errors == 0
    } else {
        false
    };

    BackupCell {
        rows_ingested: batches() * ROWS_PER_BATCH as u64,
        generations: stats.generations_completed,
        records_archived: stats.records_archived,
        ingest_plain_ms: plain_ms,
        ingest_backup_ms: backup_ms,
        overhead_pct,
        restore_snap_ms: snap_ms,
        restore_full_ms: full_ms,
        speedup: full_ms / snap_ms,
        snap_replayed: snap_report.replayed_records,
        full_replayed: full_report.replayed_records,
        restored_rows: snap_report.restored_rows,
        bit_identical,
        conserved: snap_report.conserved() && full_report.conserved(),
        drill_ok,
    }
}

/// Render the backup/DR table.
pub fn format(c: &BackupCell) -> String {
    let mut out = String::from(
        "BACKUP-DR: snapshot restore vs full archive replay, archiver overhead, drill\n",
    );
    out.push_str(&format!(
        "rows={} generations={} records_archived={}\n",
        c.rows_ingested, c.generations, c.records_archived
    ));
    out.push_str(&format!(
        "ingest: plain {:.2} ms, with archiver {:.2} ms -> overhead {:+.2}% (paired median)\n",
        c.ingest_plain_ms, c.ingest_backup_ms, c.overhead_pct
    ));
    out.push_str(&format!(
        "restore: snapshot {:.2} ms ({} records replayed), full replay {:.2} ms ({} records) -> {:.1}x\n",
        c.restore_snap_ms, c.snap_replayed, c.restore_full_ms, c.full_replayed, c.speedup
    ));
    out.push_str(&format!(
        "restored_rows={} bit_identical={} conserved={} drill_ok={}\n",
        c.restored_rows,
        if c.bit_identical { "yes" } else { "NO" },
        if c.conserved { "ok" } else { "VIOL" },
        if c.drill_ok { "yes" } else { "NO" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restore_race_and_drill_pass_their_gates() {
        // One smoke-scale pass through the whole experiment; the wall-time
        // speedup gate is left to the binary (timing under `cargo test`
        // load is unreliable) but every correctness gate holds here.
        std::env::set_var("PMOVE_BENCH_SMOKE", "1");
        let c = run();
        assert!(c.generations >= 1);
        assert!(c.records_archived >= batches());
        assert!(
            c.snap_replayed * 5 <= c.full_replayed,
            "snapshot path replayed {} of {} records — fence too early",
            c.snap_replayed,
            c.full_replayed
        );
        assert!(c.bit_identical, "restores diverge from the live store");
        assert!(c.conserved, "restore ledger unbalanced");
        assert!(c.drill_ok, "scheduled restore drill failed");
    }
}
