//! Fig. 4: relative errors between sampled metrics and likwid-bench
//! ground truth, per sampling frequency.
//!
//! Kernels execute a fixed operation stream (ground truth by
//! construction); `pmdaperfevent` samples the corresponding PMU events
//! through the lossy transport; the recalled totals are compared against
//! the truth. Following §V-A, the data volume is computed as
//! `(loads + stores) × 8` and the FLOP count from `FP_ARITH:SCALAR_DOUBLE`
//! on the Intel hosts and `RETIRED_SSE_AVX_FLOPS:ANY` on zen3.

use pmove_core::profiles::stream_kernel_profile;
use pmove_hwsim::network::LinkSpec;
use pmove_hwsim::vendor::{IsaExt, Vendor};
use pmove_hwsim::{ExecModel, Machine};
use pmove_kernels::StreamKernel;
use pmove_pcp::pmda_perfevent::PerfEventAgent;
use pmove_pcp::{Pmcd, SamplingConfig, SamplingLoop, Shipper};
use pmove_tsdb::Database;

/// Elements per kernel run (large enough that runs span multiple sampling
/// windows even at low frequency).
pub const N: u64 = 1 << 33;
/// Threads the kernels run with.
pub const THREADS: u32 = 4;

/// Measured errors for one (machine, frequency, kernel) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrCell {
    /// Machine key.
    pub machine: String,
    /// Sampling frequency.
    pub freq: f64,
    /// Kernel name.
    pub kernel: String,
    /// Relative FLOP-count error in percent (positive = overcount).
    pub flops_err_pct: f64,
    /// Relative byte-volume error in percent.
    pub bytes_err_pct: f64,
}

/// Events carrying (flops, loads, stores) per vendor.
fn events_for(machine: &Machine) -> (&'static str, &'static str, &'static str) {
    match machine.spec.arch.vendor() {
        Vendor::Intel => (
            "FP_ARITH:SCALAR_DOUBLE",
            "MEM_INST_RETIRED:ALL_LOADS",
            "MEM_INST_RETIRED:ALL_STORES",
        ),
        Vendor::Amd => (
            "RETIRED_SSE_AVX_FLOPS:ANY",
            "LS_DISPATCH:LD_DISPATCH",
            "LS_DISPATCH:STORE_DISPATCH",
        ),
    }
}

/// Measure one cell.
pub fn measure(machine_key: &str, freq: f64, kernel: StreamKernel) -> ErrCell {
    let machine = Machine::preset(machine_key).expect("known machine");
    let (flop_ev, load_ev, store_ev) = events_for(&machine);
    let events = [flop_ev, load_ev, store_ev];

    let profile = stream_kernel_profile(kernel, N, THREADS, IsaExt::Scalar);
    let ops = kernel.op_counts(N);

    let mut agent = PerfEventAgent::new(machine.spec.clone(), &events);
    agent.freq_hz = freq;
    let exec = ExecModel::new(machine.spec.clone()).run(&profile, 0.0);
    let duration = exec.end_s().max(1.0 / freq);
    agent.attach(exec);

    let db = Database::new("fig4");
    let tag = format!("fig4-{machine_key}-{freq}-{}", kernel.name());
    let mut shipper = Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / freq, &[&tag]);
    let mut pmcd = Pmcd::new();
    pmcd.set_tag("tag", tag.clone());
    pmcd.register(Box::new(agent));
    let metrics: Vec<String> = events
        .iter()
        .map(|e| format!("perfevent.hwcounters.{e}"))
        .collect();
    let config = SamplingConfig::new(metrics, freq, 0.0, duration);
    SamplingLoop::run(&config, &mut pmcd, &mut shipper);

    let total = |event: &str| -> f64 {
        let m = format!("perfevent_hwcounters_{}", event.replace([':', '.'], "_"));
        db.query(&format!("SELECT * FROM \"{m}\" WHERE tag='{tag}'"))
            .map(|r| r.total())
            .unwrap_or(0.0)
    };
    let flops_meas = total(flop_ev);
    let bytes_meas = (total(load_ev) + total(store_ev)) * 8.0;
    let bytes_truth = ops.total_bytes() as f64;

    ErrCell {
        machine: machine_key.to_string(),
        freq,
        kernel: kernel.name().to_string(),
        flops_err_pct: 100.0 * (flops_meas - ops.flops as f64) / ops.flops.max(1) as f64,
        bytes_err_pct: 100.0 * (bytes_meas - bytes_truth) / bytes_truth,
    }
}

/// Averaged errors per (machine, frequency) over the six kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrSummary {
    /// Machine key.
    pub machine: String,
    /// Sampling frequency.
    pub freq: f64,
    /// Mean FLOPs error (%).
    pub mean_flops_err_pct: f64,
    /// Mean bytes error (%).
    pub mean_bytes_err_pct: f64,
    /// Mean |error| across both metrics (%).
    pub mean_abs_err_pct: f64,
}

/// Run the full sweep.
pub fn run(machines: &[&str], freqs: &[f64]) -> Vec<ErrSummary> {
    let mut out = Vec::new();
    for &m in machines {
        for &f in freqs {
            let cells: Vec<ErrCell> = StreamKernel::fig4_set()
                .iter()
                .map(|&k| measure(m, f, k))
                .collect();
            let n = cells.len() as f64;
            out.push(ErrSummary {
                machine: m.to_string(),
                freq: f,
                mean_flops_err_pct: cells.iter().map(|c| c.flops_err_pct).sum::<f64>() / n,
                mean_bytes_err_pct: cells.iter().map(|c| c.bytes_err_pct).sum::<f64>() / n,
                mean_abs_err_pct: cells
                    .iter()
                    .map(|c| (c.flops_err_pct.abs() + c.bytes_err_pct.abs()) / 2.0)
                    .sum::<f64>()
                    / n,
            });
        }
    }
    out
}

/// Render the figure data.
pub fn format(rows: &[ErrSummary]) -> String {
    let mut out =
        String::from("FIG 4: relative error (%) of sampled FLOPs/bytes vs ground truth\n");
    out.push_str(&format!(
        "{:<6} {:>6} {:>14} {:>14} {:>12}\n",
        "Host", "Freq", "FLOPs err%", "Bytes err%", "|err|% mean"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:>6} {:>14.3} {:>14.3} {:>12.3}\n",
            r.machine, r.freq, r.mean_flops_err_pct, r.mean_bytes_err_pct, r.mean_abs_err_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_frequency_errors_are_small() {
        let c = measure("icl", 2.0, StreamKernel::Triad);
        assert!(c.flops_err_pct.abs() < 3.0, "flops err {}", c.flops_err_pct);
        assert!(c.bytes_err_pct.abs() < 3.0, "bytes err {}", c.bytes_err_pct);
    }

    #[test]
    fn zen3_uses_amd_events() {
        let c = measure("zen3", 2.0, StreamKernel::Ddot);
        // The AMD merged FLOP counter recalls the true count closely.
        assert!(c.flops_err_pct.abs() < 4.0, "err {}", c.flops_err_pct);
    }

    #[test]
    fn errors_grow_with_frequency_on_large_hosts() {
        // skx at 64 Hz: transmission losses cause visible undercounting.
        let lo = run(&["skx"], &[2.0]);
        let hi = run(&["skx"], &[64.0]);
        assert!(
            hi[0].mean_abs_err_pct > lo[0].mean_abs_err_pct,
            "hi {} lo {}",
            hi[0].mean_abs_err_pct,
            lo[0].mean_abs_err_pct
        );
        // Undercounting (negative bias) dominates at high frequency.
        assert!(hi[0].mean_flops_err_pct < 0.0);
    }

    #[test]
    fn format_lists_all_rows() {
        let rows = run(&["icl"], &[2.0, 8.0]);
        let text = format(&rows);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("icl"));
    }
}
