//! Chaos experiments: the Table III shipping workload under three canned
//! fault schedules, with the resilient transport mode off vs. on.
//!
//! The paper's loss model assumes healthy nodes and a healthy backend;
//! this table quantifies what the self-healing extension buys when that
//! assumption breaks: lost values become spilled-and-recovered values,
//! outages end with gap markers instead of silent holes, and the table
//! reports how long after the last fault the spill buffer took to drain.

use pmove_hwsim::network::LinkSpec;
use pmove_hwsim::FaultSchedule;
use pmove_pcp::{ResilienceConfig, Shipper};
use pmove_tsdb::{Database, Point};

/// Experiment duration in virtual seconds.
pub const DURATION_S: f64 = 60.0;
/// Sampling frequency (samples/s).
pub const FREQ_HZ: f64 = 4.0;
/// Instance-domain size per report (a 16-thread icl-style target).
const DOMAIN: usize = 16;
/// Metrics shipped per tick.
const N_METRICS: usize = 4;

/// One chaos measurement cell.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Canned schedule name.
    pub schedule: String,
    /// Whether the resilient transport mode was on.
    pub resilient: bool,
    /// Field values offered by the sampler.
    pub offered: u64,
    /// Field values acknowledged at the database (incl. zeros).
    pub inserted: u64,
    /// Field values lost for good.
    pub lost: u64,
    /// Spilled values evicted by the bounded buffer.
    pub evicted: u64,
    /// Spilled values recovered into the database after retry.
    pub recovered: u64,
    /// Gap-marker points written on recovery.
    pub gap_markers: u64,
    /// Whether the 5-term conservation identity held.
    pub conserved: bool,
    /// Seconds after the last fault until the spill buffer drained;
    /// `None` when it never did (or there was nothing to drain).
    pub recovery_s: Option<f64>,
}

impl ChaosReport {
    /// Values lost or evicted, as a percentage of offered.
    pub fn loss_pct(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        100.0 * (self.lost + self.evicted) as f64 / self.offered as f64
    }
}

/// The three canned schedules of the experiment.
pub fn canned_schedules() -> Vec<(String, FaultSchedule)> {
    vec![
        (
            // 2 s link outage every 10 s for the whole run.
            "link-flaps".to_string(),
            FaultSchedule::link_flaps(10.0, 2.0, DURATION_S),
        ),
        (
            // Backend answers 30% of inserts during the middle third.
            "db-brownout".to_string(),
            FaultSchedule::midrun_brownout(DURATION_S, 0.3),
        ),
        (
            // Link capacity collapses to 2% during the middle half —
            // below the workload's ~256 values/s offered rate.
            "bandwidth-collapse".to_string(),
            FaultSchedule::midrun_degraded(DURATION_S, 0.02),
        ),
    ]
}

/// Deterministic per-cell value stream (SplitMix64).
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run one cell: the fixed workload under `schedule`, resilient or not.
pub fn run_cell(name: &str, schedule: FaultSchedule, resilient: bool) -> ChaosReport {
    let db = Database::new("host");
    let mode = if resilient { "on" } else { "off" };
    let mut shipper = Shipper::new(
        &db,
        LinkSpec::mbit_100(),
        1.0 / FREQ_HZ,
        &["chaos", name, mode],
    )
    .with_fault_schedule(schedule.clone());
    if resilient {
        shipper = shipper.with_resilience(ResilienceConfig::default());
    }

    let fault_end_s = schedule.last_fault_end_s();
    let ticks = (DURATION_S * FREQ_HZ) as u64;
    let mut value_seed = 0xC4A0_5EED ^ ticks;
    let mut drained_at_s = None;
    for tick in 0..ticks {
        let t = tick as f64 / FREQ_HZ;
        for m in 0..N_METRICS {
            let mut p = Point::new(format!("perfevent_hwcounters_m{m}"))
                .tag("tag", "chaos")
                .timestamp((t * 1e9) as i64 + m as i64);
            for i in 0..DOMAIN {
                p = p.field(
                    format!("_cpu{i}"),
                    (next(&mut value_seed) % 1_000_000) as f64,
                );
            }
            shipper.ship(t, p, FREQ_HZ);
        }
        let st = shipper.stats();
        if drained_at_s.is_none()
            && t >= fault_end_s
            && st.values_spilled > 0
            && st.values_spill_pending == 0
        {
            drained_at_s = Some(t);
        }
    }
    // Idle tail: let the resilient transport finish draining.
    if resilient {
        let mut t = DURATION_S;
        while t <= fault_end_s.max(DURATION_S) + 20.0 {
            shipper.idle_tick(t);
            let st = shipper.stats();
            if drained_at_s.is_none() && st.values_spilled > 0 && st.values_spill_pending == 0 {
                drained_at_s = Some(t);
            }
            t += 0.25;
        }
    }

    let st = shipper.stats();
    ChaosReport {
        schedule: name.to_string(),
        resilient,
        offered: st.values_offered,
        inserted: st.values_inserted + st.values_zeroed,
        lost: st.values_lost,
        evicted: st.values_evicted,
        recovered: st.values_recovered,
        gap_markers: st.gap_markers,
        conserved: st.conserved(),
        recovery_s: drained_at_s.map(|t| (t - fault_end_s).max(0.0)),
    }
}

/// Run every canned schedule, off then on.
pub fn run() -> Vec<ChaosReport> {
    let mut out = Vec::new();
    for (name, schedule) in canned_schedules() {
        out.push(run_cell(&name, schedule.clone(), false));
        out.push(run_cell(&name, schedule, true));
    }
    out
}

/// Render the table.
pub fn format(reports: &[ChaosReport]) -> String {
    let mut out =
        String::from("CHAOS: transport under injected faults, resilient mode off vs on\n");
    out.push_str(&format!(
        "{:<19} {:<4} {:>8} {:>8} {:>7} {:>8} {:>9} {:>5} {:>7} {:>9}\n",
        "Schedule",
        "Mode",
        "Offered",
        "Insert",
        "Lost",
        "Evicted",
        "Recovered",
        "Gaps",
        "Loss%",
        "Recov s"
    ));
    for r in reports {
        let recov = r
            .recovery_s
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:<19} {:<4} {:>8} {:>8} {:>7} {:>8} {:>9} {:>5} {:>7.2} {:>9}\n",
            r.schedule,
            if r.resilient { "on" } else { "off" },
            r.offered,
            r.inserted,
            r.lost,
            r.evicted,
            r.recovered,
            r.gap_markers,
            r.loss_pct(),
            recov,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilient_mode_beats_default_under_every_schedule() {
        for (name, schedule) in canned_schedules() {
            let off = run_cell(&name, schedule.clone(), false);
            let on = run_cell(&name, schedule, true);
            assert!(off.conserved && on.conserved, "{name}: conservation");
            assert_eq!(off.offered, on.offered, "{name}: same workload");
            assert!(
                off.lost + off.evicted > 0,
                "{name}: the schedule must actually hurt the default mode"
            );
            assert!(
                on.lost + on.evicted < off.lost + off.evicted,
                "{name}: resilience must reduce losses ({} vs {})",
                on.lost + on.evicted,
                off.lost + off.evicted
            );
            assert!(on.recovered > 0, "{name}: spills were recovered");
        }
    }

    #[test]
    fn chaos_cells_are_deterministic() {
        let (name, schedule) = canned_schedules().remove(0);
        let a = run_cell(&name, schedule.clone(), true);
        let b = run_cell(&name, schedule, true);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.inserted, b.inserted);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.recovered, b.recovered);
        assert_eq!(a.recovery_s, b.recovery_s);
    }
}
