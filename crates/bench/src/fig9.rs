//! Fig. 9: live-CARM during likwid benchmark executions on CSL.
//!
//! * **Triad** (AI = 0.0625 under the CARM byte convention; the paper
//!   prints "0.625", an apparent typo) — memory-bound; its working set
//!   exceeds the 32 KiB L1, so performance approaches but cannot surpass
//!   the L2 roof.
//! * **PeakFlops** (AI = 2) — reaches the top FP roof.
//! * **DDOT** (AI = 0.125) — fits in L1, surpassing the L2 roof and
//!   approaching the architecture's maximum.

use pmove_core::carm::microbench::construct_carm;
use pmove_core::carm::{CarmModel, LiveCarm, LiveCarmPoint};
use pmove_core::profiles::stream_kernel_profile_at_level;
use pmove_core::telemetry::pinning::PinningStrategy;
use pmove_core::telemetry::scenario_b::ProfileRequest;
use pmove_core::PMoveDaemon;
use pmove_kernels::StreamKernel;

/// One benchmark's live-CARM characterization.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPhase {
    /// Kernel name.
    pub kernel: String,
    /// Theoretical AI (ground truth).
    pub theoretical_ai: f64,
    /// Mean live AI captured by the panel.
    pub live_ai: f64,
    /// Mean live GFLOP/s.
    pub live_gflops: f64,
    /// Trajectory points.
    pub points: Vec<LiveCarmPoint>,
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// The constructed CARM.
    pub carm: CarmModel,
    /// One phase per benchmark.
    pub phases: Vec<BenchPhase>,
}

impl Fig9Result {
    /// Look up one phase.
    pub fn phase(&self, kernel: &str) -> &BenchPhase {
        self.phases
            .iter()
            .find(|p| p.kernel == kernel)
            .expect("phase exists")
    }
}

/// Run the experiment.
pub fn run() -> Fig9Result {
    let mut daemon = PMoveDaemon::for_preset("csl").expect("csl preset");
    let threads = daemon.machine.spec.total_cores();
    let carm = construct_carm(&daemon.machine, threads);
    let layer = daemon.layer.clone();
    let live = LiveCarm::new(&layer, "csl");
    let isa = daemon.machine.spec.arch.widest_isa();

    // (kernel, residency level): Triad works from L2 (beyond L1),
    // PeakFlops and DDOT from L1.
    let cases = [
        (StreamKernel::Triad, 2u8),
        (StreamKernel::Peakflops, 1),
        (StreamKernel::Ddot, 1),
    ];
    // likwid repeats the stream: runs span several seconds, so the
    // live-CARM windows sit in steady state.
    let n: u64 = 1 << 40;
    let mut phases = Vec::new();
    for (kernel, level) in cases {
        let request = ProfileRequest {
            profile: stream_kernel_profile_at_level(kernel, n, threads, isa, level),
            command: format!("likwid-bench -t {}", kernel.name()),
            generic_events: vec!["TOTAL_DP_FLOPS".into(), "TOTAL_MEMORY_OPERATIONS".into()],
            freq_hz: 8.0,
            pinning: PinningStrategy::Compact,
        };
        let outcome = daemon.profile(&request).expect("profiling succeeds");
        let points = live
            .trajectory(&daemon.ts, &outcome.observation.id, 0.125)
            .expect("trajectory");
        let (live_ai, live_gflops) = steady_state_means(&points);
        phases.push(BenchPhase {
            kernel: kernel.name().to_string(),
            theoretical_ai: kernel.op_counts(n).arithmetic_intensity(),
            live_ai,
            live_gflops,
            points,
        });
    }
    Fig9Result { carm, phases }
}

/// Mean (AI, GFLOP/s) over the steady-state points of a trajectory.
/// Partial first/last windows (kernel starts/stops mid-window) dilute the
/// rates, and windows hit by batched-zero samples show AI 0 — both are
/// excluded, as a human reading the live panel would ignore the glitches.
/// AI aggregates as total-flops over total-bytes (work-weighted), not a
/// mean of per-window ratios.
pub fn steady_state_means(points: &[pmove_core::carm::LiveCarmPoint]) -> (f64, f64) {
    let max = points.iter().map(|p| p.gflops).fold(0.0, f64::max);
    let steady: Vec<_> = points
        .iter()
        .filter(|p| p.gflops >= 0.5 * max && p.ai > 0.0)
        .collect();
    let m = steady.len().max(1) as f64;
    // With uniform windows, per-window flops ∝ gflops and per-window
    // bytes ∝ gflops / ai.
    let flops: f64 = steady.iter().map(|p| p.gflops).sum();
    let bytes: f64 = steady.iter().map(|p| p.gflops / p.ai).sum();
    (if bytes > 0.0 { flops / bytes } else { 0.0 }, flops / m)
}

/// Render the panel.
pub fn format(r: &Fig9Result) -> String {
    let mut out = String::from("FIG 9: live-CARM during likwid benchmarks (CSL)\n");
    for p in &r.phases {
        out.push_str(&format!(
            "  {:<10} theoretical AI {:.4}, live AI {:.4}, live {:.0} GF/s\n",
            p.kernel, p.theoretical_ai, p.live_ai, p.live_gflops
        ));
    }
    let all: Vec<LiveCarmPoint> = r.phases.iter().flat_map(|p| p.points.clone()).collect();
    out.push_str(&pmove_core::carm::plot::render(&r.carm, &all, 72, 20));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn result() -> &'static Fig9Result {
        static CACHE: OnceLock<Fig9Result> = OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn live_ai_captures_theoretical_ai() {
        // "the theoretical AI ... is accurately captured by the live-CARM".
        let r = result();
        for p in &r.phases {
            let rel = (p.live_ai - p.theoretical_ai).abs() / p.theoretical_ai;
            assert!(
                rel < 0.15,
                "{}: live {} vs theory {}",
                p.kernel,
                p.live_ai,
                p.theoretical_ai
            );
        }
        assert!((result().phase("ddot").theoretical_ai - 0.125).abs() < 1e-12);
        assert!((result().phase("peakflops").theoretical_ai - 2.0).abs() < 1e-12);
    }

    #[test]
    fn peakflops_reaches_the_fp_roof() {
        let r = result();
        let p = r.phase("peakflops");
        let peak = r.carm.peak_gflops();
        assert!(
            p.live_gflops > 0.8 * peak,
            "peakflops {} vs roof {peak}",
            p.live_gflops
        );
        assert!(p.live_gflops <= peak * 1.05);
    }

    #[test]
    fn triad_stays_under_the_l2_roof() {
        let r = result();
        let p = r.phase("triad");
        let l2_roof = r.carm.attainable(p.live_ai, "L2").expect("L2 roof");
        assert!(
            p.live_gflops <= l2_roof * 1.05,
            "triad {} above L2 roof {l2_roof}",
            p.live_gflops
        );
        // But meaningfully above the DRAM roof (it is cache-resident).
        let dram_roof = r.carm.attainable(p.live_ai, "DRAM").unwrap();
        assert!(p.live_gflops > dram_roof);
    }

    #[test]
    fn ddot_surpasses_the_l2_roof() {
        let r = result();
        let p = r.phase("ddot");
        let l2_roof = r.carm.attainable(p.live_ai, "L2").expect("L2 roof");
        assert!(
            p.live_gflops > l2_roof,
            "ddot {} did not surpass L2 roof {l2_roof}",
            p.live_gflops
        );
    }

    #[test]
    fn format_summarizes_phases() {
        let text = format(result());
        assert!(text.contains("triad"));
        assert!(text.contains("peakflops"));
        assert!(text.contains("ddot"));
    }
}
