//! Integrity experiment: latent bit-rot vs. the background scrubber.
//!
//! The replicated shipping workload runs fault-free over durable RF=3
//! replicas, periodic flushes spread the data over several chunks per
//! replica, then a seeded rot schedule flips bits inside one replica's
//! chunk namespace. A token-bucket-paced scrub sweep runs for exactly one
//! full-pass period: the gate is that every rotted chunk is detected and
//! quarantined within that single pass, read-repair restores the victim
//! bit-identically from the healthy quorum, and the widened conservation
//! ledger balances with nothing left pending. The zero-flip control must
//! verify the whole store while quarantining nothing and moving zero
//! repair traffic — scrubbing a healthy store is free.

use pmove_hwsim::FaultSchedule;
use pmove_pcp::ReplShipper;
use pmove_tsdb::repl::{IntegrityReport, ReplConfig, ReplicaSet};
use pmove_tsdb::store::{RotSchedule, ScrubConfig, StoreOptions};
use pmove_tsdb::{Database, ExecMode, Point, Query};

/// Experiment duration in virtual seconds.
pub const DURATION_S: f64 = 20.0;
/// Sampling frequency (samples/s) — below the stale-read-zero threshold.
pub const FREQ_HZ: f64 = 4.0;
/// Instance-domain size per report.
const DOMAIN: usize = 8;
/// Metrics shipped per tick.
const N_METRICS: usize = 2;
/// Flush cadence in ticks: several chunks per replica, so rot can land in
/// any generation of durable data.
const FLUSH_EVERY: u32 = 16;
/// Replica whose disk rots (RF − W = 1 victim budget).
const VICTIM: usize = 1;
/// Target period for one full scrub pass, in virtual seconds.
pub const SCRUB_PERIOD_S: f64 = 8.0;
/// Scrub tick cadence during the sweep.
const SCRUB_TICK_S: f64 = 0.25;
/// Rot-event counts swept (0 = no-fault control).
pub const FLIP_SWEEP: [u32; 4] = [0, 1, 4, 8];

/// One cell of the detection/repair table.
#[derive(Debug, Clone)]
pub struct ScrubCell {
    /// Rot events fired at the victim's disk.
    pub flips: u32,
    /// Distinct chunk files the flips landed in.
    pub chunks_rotted: u64,
    /// Chunks the scrub pass quarantined.
    pub chunks_quarantined: u64,
    /// Whether every rotted chunk was quarantined within ONE full pass.
    pub detected_within_pass: bool,
    /// Bytes the sweep read and checksummed.
    pub bytes_verified: u64,
    /// Field values the quarantines dropped from the victim.
    pub cells_corrupted: u64,
    /// Field values read-repair restored from the healthy quorum.
    pub cells_repaired: u64,
    /// Corrupted-but-unrepaired values left in the ledger (should be 0).
    pub corrupt_pending: u64,
    /// Merkle ranges anti-entropy streamed during the sweep.
    pub ranges_repaired: u64,
    /// Whether the widened 8-term conservation identity held.
    pub conserved: bool,
    /// Whether quorum reads match the uncorrupted oracle bit-for-bit.
    pub bit_identical: bool,
    /// Whether the replicas converged by the end of the sweep.
    pub converged: bool,
}

/// Deterministic per-cell value stream (SplitMix64).
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run one cell: fault-free shipping, `flips` rot events on the victim,
/// one full scrub pass, then the oracle comparison.
pub fn run_cell(flips: u32) -> ScrubCell {
    let oracle = Database::new("oracle");
    let (set, _) = ReplicaSet::durable(
        "scrubbench",
        ReplConfig::default(),
        0x5C12_B5EE ^ flips as u64,
        StoreOptions {
            flush_threshold_rows: 1_000_000,
            compact_min_chunks: 1_000_000,
        },
    )
    .unwrap();
    let schedules = vec![FaultSchedule::none(); set.len()];
    let mut coord =
        ReplShipper::new(&set, schedules, &["scrubbench", &format!("f{flips}")]).unwrap();

    let ticks = (DURATION_S * FREQ_HZ) as u32;
    let mut value_seed = 0x0DD5_C4AB ^ flips as u64;
    for tick in 0..ticks {
        let t = (tick + 1) as f64 / FREQ_HZ;
        coord.heartbeat(t);
        for m in 0..N_METRICS {
            let mut p = Point::new(format!("perfevent_hwcounters_m{m}"))
                .tag("tag", "scrub")
                .timestamp((t * 1e9) as i64 + m as i64);
            for i in 0..DOMAIN {
                p = p.field(
                    format!("_cpu{i}"),
                    (next(&mut value_seed) % 1_000_000) as f64 / 7.0,
                );
            }
            oracle.write_point(p.clone()).unwrap();
            coord.ship(t, p, FREQ_HZ);
        }
        if (tick + 1) % FLUSH_EVERY == 0 {
            for r in set.replicas() {
                r.flush().unwrap();
            }
        }
    }
    for r in set.replicas() {
        r.flush().unwrap();
    }

    // Latent rot while "running": the schedule fires inside the monitored
    // window, the flips apply to already-durable chunk bytes.
    let rot = RotSchedule::random(0xB17F_11B5 ^ flips as u64, flips, 0.0, DURATION_S)
        .with_prefix("chunk-");
    set.disks()[VICTIM].schedule_rot(rot);
    let fired = set.disks()[VICTIM].advance_rot(DURATION_S + 0.5);
    let mut rotted_files: Vec<&str> = fired.iter().map(|r| r.file.as_str()).collect();
    rotted_files.sort_unstable();
    rotted_files.dedup();
    let chunks_rotted = rotted_files.len() as u64;

    // Exactly one full scrub pass: the detection gate.
    let mut scrubbers = set.scrubbers(ScrubConfig {
        full_pass_period_s: SCRUB_PERIOD_S,
        burst_bytes: 4096.0,
    });
    let mut total = IntegrityReport::default();
    let mut converged = true;
    let t0 = DURATION_S + 1.0;
    let mut t = t0;
    while t <= t0 + SCRUB_PERIOD_S {
        let r = coord.scrub_and_repair(&mut scrubbers, t, 4).unwrap();
        converged &= r.converged;
        total.bytes_verified += r.bytes_verified;
        total.chunks_quarantined += r.chunks_quarantined;
        total.cells_corrupted += r.cells_corrupted;
        total.cells_repaired += r.cells_repaired;
        total.repair.ranges_repaired += r.repair.ranges_repaired;
        t += SCRUB_TICK_S;
    }

    // Oracle comparison: R-quorum reads vs the uncorrupted single node.
    let reachable = coord.reachable();
    let mut bit_identical = true;
    for m in 0..N_METRICS {
        let cols: Vec<String> = (0..DOMAIN).map(|i| format!("\"_cpu{i}\"")).collect();
        let text = format!(
            "SELECT {} FROM \"perfevent_hwcounters_m{m}\"",
            cols.join(", ")
        );
        let q = Query::parse(&text).unwrap();
        let want = oracle.query_with_mode(&q, ExecMode::Sequential).unwrap();
        let got = set
            .quorum_read_with_mode(&q, &reachable, ExecMode::Parallel(4))
            .unwrap();
        bit_identical &= want.rows.len() == got.rows.len();
        for (a, b) in want.rows.iter().zip(&got.rows) {
            bit_identical &= a.timestamp == b.timestamp;
            for (col, va) in &a.values {
                bit_identical &=
                    va.map(f64::to_bits) == b.values.get(col).and_then(|v| v.map(f64::to_bits));
            }
        }
    }

    let st = coord.stats();
    // Count every quarantine on the victim, whatever detected it: the
    // scrub tick that caught the first damaged chunk, or the rebuild's
    // store scan that caught the rest in the same sweep.
    let chunks_quarantined = set.replica(VICTIM).quarantined_chunks().len() as u64;
    ScrubCell {
        flips,
        chunks_rotted,
        chunks_quarantined,
        detected_within_pass: chunks_quarantined >= chunks_rotted,
        bytes_verified: total.bytes_verified,
        cells_corrupted: total.cells_corrupted,
        cells_repaired: total.cells_repaired,
        corrupt_pending: st.values_corrupt_pending,
        ranges_repaired: total.repair.ranges_repaired,
        conserved: st.conserved(),
        bit_identical,
        converged,
    }
}

/// Sweep every flip count in [`FLIP_SWEEP`] under the same workload.
pub fn run() -> Vec<ScrubCell> {
    FLIP_SWEEP.iter().map(|&f| run_cell(f)).collect()
}

/// Render the detection/repair table.
pub fn format(cells: &[ScrubCell]) -> String {
    let mut out = String::from(
        "SCRUB: latent rot vs one background scrub pass (RF=3, read-repair from quorum)\n",
    );
    out.push_str(&format!(
        "{:<6} {:>7} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>5} {:>6} {:>5}\n",
        "Flips",
        "Rotted",
        "Quarant",
        "Detect<=T",
        "CorrCell",
        "RepCell",
        "Pending",
        "Ranges",
        "Cons",
        "BitEq",
        "Conv"
    ));
    for c in cells {
        out.push_str(&format!(
            "{:<6} {:>7} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>5} {:>6} {:>5}\n",
            c.flips,
            c.chunks_rotted,
            c.chunks_quarantined,
            if c.detected_within_pass { "yes" } else { "NO" },
            c.cells_corrupted,
            c.cells_repaired,
            c.corrupt_pending,
            c.ranges_repaired,
            if c.conserved { "ok" } else { "VIOL" },
            if c.bit_identical { "yes" } else { "NO" },
            if c.converged { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rot_is_detected_and_repaired_within_one_pass() {
        let cell = run_cell(4);
        assert!(cell.chunks_rotted >= 1, "rot landed nowhere");
        assert!(
            cell.detected_within_pass,
            "{} of {} rotted chunks quarantined within one pass",
            cell.chunks_quarantined, cell.chunks_rotted
        );
        assert!(cell.cells_corrupted > 0);
        assert_eq!(cell.cells_repaired, cell.cells_corrupted);
        assert_eq!(cell.corrupt_pending, 0);
        assert!(cell.conserved, "widened ledger must balance");
        assert!(cell.bit_identical, "repair must restore the oracle bits");
        assert!(cell.converged);
    }

    #[test]
    fn clean_control_scrubs_for_free() {
        let cell = run_cell(0);
        assert_eq!(cell.chunks_rotted, 0);
        assert_eq!(cell.chunks_quarantined, 0);
        assert_eq!(cell.cells_corrupted, 0);
        assert_eq!(cell.cells_repaired, 0);
        assert_eq!(cell.ranges_repaired, 0, "clean scrub moved repair traffic");
        assert!(cell.bytes_verified > 0, "control must still verify bytes");
        assert!(cell.conserved && cell.bit_identical && cell.converged);
    }

    #[test]
    fn scrub_cells_are_deterministic() {
        let a = run_cell(1);
        let b = run_cell(1);
        assert_eq!(a.chunks_rotted, b.chunks_rotted);
        assert_eq!(a.bytes_verified, b.bytes_verified);
        assert_eq!(a.cells_corrupted, b.cells_corrupted);
        assert_eq!(a.cells_repaired, b.cells_repaired);
    }
}
