//! Fig. 5: time overhead caused by profiling the six likwid-bench
//! kernels, per sampling frequency.
//!
//! Each kernel runs 5 times with and without sampling; run times are
//! averaged and the overhead is the relative difference. Run-to-run
//! variance can exceed the tiny sampling overhead, producing the paper's
//! *negative overheads*; the positive skew grows with frequency.

use pmove_core::profiles::stream_kernel_profile;
use pmove_hwsim::noise::NoiseSource;
use pmove_hwsim::vendor::IsaExt;
use pmove_hwsim::{ExecModel, Machine};
use pmove_kernels::StreamKernel;

/// Repetitions per configuration (the paper uses 5).
pub const REPS: usize = 5;
/// Elements per kernel run.
pub const N: u64 = 1 << 31;

/// Overhead of one (kernel, frequency) cell, in percent.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadCell {
    /// Kernel name.
    pub kernel: String,
    /// Sampling frequency.
    pub freq: f64,
    /// Mean run time without sampling (s).
    pub base_s: f64,
    /// Mean run time with sampling (s).
    pub sampled_s: f64,
}

impl OverheadCell {
    /// Overhead in percent (can be negative).
    pub fn overhead_pct(&self) -> f64 {
        100.0 * (self.sampled_s - self.base_s) / self.base_s
    }
}

/// Measure one cell on a machine. Distinct noise streams per repetition
/// model independent runs.
pub fn measure(machine: &Machine, kernel: StreamKernel, freq: f64, rep_seed: u64) -> OverheadCell {
    let model = ExecModel::new(machine.spec.clone());
    let profile = stream_kernel_profile(
        kernel,
        N,
        machine.spec.total_cores(),
        machine.spec.arch.widest_isa().min(IsaExt::Avx2),
    );
    let mut base = 0.0;
    let mut sampled = 0.0;
    for rep in 0..REPS {
        // Plain run: same run-to-run variance, no sampling perturbation.
        let mut noise = NoiseSource::from_labels(&[
            machine.key(),
            kernel.name(),
            &format!("plain-{rep_seed}-{rep}"),
        ]);
        let plain = model.run(&profile, 0.0).duration_s * noise.runtime_factor(0.0008);
        base += plain;
        let mut noise = NoiseSource::from_labels(&[
            machine.key(),
            kernel.name(),
            &format!("sampled-{freq}-{rep_seed}-{rep}"),
        ]);
        sampled += model
            .run_sampled(&profile, 0.0, freq, &mut noise)
            .duration_s;
    }
    OverheadCell {
        kernel: kernel.name().to_string(),
        freq,
        base_s: base / REPS as f64,
        sampled_s: sampled / REPS as f64,
    }
}

/// Full sweep over the six kernels and the frequency ladder.
pub fn run(machine_key: &str, freqs: &[f64]) -> Vec<OverheadCell> {
    let machine = Machine::preset(machine_key).expect("known machine");
    let mut out = Vec::new();
    for &f in freqs {
        for &k in &StreamKernel::fig4_set() {
            out.push(measure(&machine, k, f, 1));
        }
    }
    out
}

/// Render the figure data.
pub fn format(cells: &[OverheadCell]) -> String {
    let mut out = String::from("FIG 5: profiling overhead (%) per kernel and frequency\n");
    out.push_str(&format!(
        "{:<11} {:>6} {:>12}\n",
        "Kernel", "Freq", "Overhead %"
    ));
    for c in cells {
        out.push_str(&format!(
            "{:<11} {:>6} {:>12.4}\n",
            c.kernel,
            c.freq,
            c.overhead_pct()
        ));
    }
    let mean: f64 = cells.iter().map(OverheadCell::overhead_pct).sum::<f64>() / cells.len() as f64;
    out.push_str(&format!("mean overhead: {mean:.4} %\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_tiny() {
        let cells = run("csl", &[1.0, 8.0, 64.0]);
        for c in &cells {
            assert!(
                c.overhead_pct().abs() < 0.5,
                "{} @ {} Hz: {}%",
                c.kernel,
                c.freq,
                c.overhead_pct()
            );
        }
    }

    #[test]
    fn negative_overheads_occur() {
        // The paper's surprising observation: variance between runs can
        // make measured overhead negative.
        let mut any_negative = false;
        for seed in 0..30 {
            let machine = Machine::preset("icl").unwrap();
            let c = measure(&machine, StreamKernel::Sum, 1.0, seed);
            if c.overhead_pct() < 0.0 {
                any_negative = true;
                break;
            }
        }
        assert!(any_negative, "no negative overhead in 30 trials");
    }

    #[test]
    fn positive_skew_grows_with_frequency() {
        // Mean over many seeds at high frequency is clearly positive and
        // larger than at low frequency.
        let machine = Machine::preset("csl").unwrap();
        let mean_at = |freq: f64| {
            (0..20)
                .map(|s| measure(&machine, StreamKernel::Triad, freq, s).overhead_pct())
                .sum::<f64>()
                / 20.0
        };
        let lo = mean_at(1.0);
        let hi = mean_at(64.0);
        assert!(hi > lo, "hi {hi} lo {lo}");
        assert!(hi > 0.0, "hi {hi}");
    }

    #[test]
    fn format_reports_all_cells() {
        let cells = run("icl", &[2.0]);
        let text = format(&cells);
        assert!(text.contains("peakflops"));
        assert!(text.contains("mean overhead"));
    }
}
