//! # pmove — facade crate
//!
//! Re-exports every P-MoVE crate under one roof so examples and downstream
//! users can write `use pmove::core::...` without tracking individual
//! workspace members.
//!
//! See the crate-level documentation of [`core`] for the framework itself
//! and `DESIGN.md` in the repository root for the system inventory.

pub use pmove_core as core;
pub use pmove_docdb as docdb;
pub use pmove_hwsim as hwsim;
pub use pmove_jsonld as jsonld;
pub use pmove_kernels as kernels;
pub use pmove_obs as obs;
pub use pmove_pcp as pcp;
pub use pmove_serve as serve;
pub use pmove_spmv as spmv;
pub use pmove_tsdb as tsdb;
