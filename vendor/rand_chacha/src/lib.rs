//! In-tree stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] runs the genuine ChaCha block function with 8 rounds
//! over a 32-byte seed, so streams are high-quality and fully determined
//! by the seed. (Word-for-word output is not guaranteed to match the
//! upstream crate; the workspace only depends on determinism.)

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream-cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn uniformity_smoke() {
        let mut r = ChaCha8Rng::seed_from_u64(99);
        let mean = (0..20_000).map(|_| r.gen_range(0.0..1.0f64)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
