//! In-tree stand-in for `serde_derive`.
//!
//! Generates impls of the value-model `serde::Serialize` /
//! `serde::Deserialize` traits (see the vendored `serde` crate) by parsing
//! the derive input token stream directly — no `syn`/`quote`, since those
//! are not available offline. Supported shapes cover everything the
//! workspace derives on:
//!
//! - structs with named fields (field attrs: `rename`, `default`,
//!   `skip_serializing_if`)
//! - tuple structs (newtype structs serialize as their inner value,
//!   wider tuples as arrays)
//! - unit structs
//! - enums with unit, newtype, and tuple variants (externally tagged,
//!   like upstream serde: `"Variant"`, `{"Variant": v}`, `{"Variant": [..]}`)
//!
//! Generics and struct-variant enums are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct FieldAttrs {
    rename: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

impl Field {
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

enum VariantKind {
    Unit,
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct TypeDef {
    name: String,
    body: Body,
}

/// Derive the value-model `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_serialize(&def)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive the value-model `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_deserialize(&def)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_type(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }

    let body = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("serde_derive: expected enum body for `{name}`, got {other:?}"),
        },
        kw => panic!("serde_derive: cannot derive for `{kw}` items"),
    };

    TypeDef { name, body }
}

/// Skip leading attributes and visibility, ignoring everything (container
/// attrs are not supported and not used by the workspace).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(super)` carry a paren group.
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Collect `#[serde(...)]` attributes at the cursor into `attrs`,
/// skipping every other attribute (doc comments etc.).
fn take_field_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            parse_serde_attr(g.stream(), &mut attrs);
        }
        *i += 2;
    }
    attrs
}

/// If the bracket group holds `serde(...)`, fold its entries into `attrs`.
fn parse_serde_attr(stream: TokenStream, attrs: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                let key = match &inner[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    TokenTree::Punct(p) if p.as_char() == ',' => {
                        j += 1;
                        continue;
                    }
                    other => panic!("serde_derive: unexpected serde attr token {other:?}"),
                };
                j += 1;
                let mut value = None;
                if matches!(inner.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    j += 1;
                    match inner.get(j) {
                        Some(TokenTree::Literal(lit)) => {
                            value = Some(lit.to_string().trim_matches('"').to_string());
                            j += 1;
                        }
                        other => {
                            panic!("serde_derive: expected string after `{key} =`, got {other:?}")
                        }
                    }
                }
                match key.as_str() {
                    "rename" => attrs.rename = value,
                    "default" => attrs.default = true,
                    "skip_serializing_if" => attrs.skip_serializing_if = value,
                    other => panic!("serde_derive: unsupported serde attribute `{other}`"),
                }
            }
        }
        _ => {} // not a serde attribute; ignore
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_field_attrs(&tokens, &mut i);
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(
                tokens.get(i),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Advance past one type, stopping after the top-level `,` (or at end).
/// Angle brackets are plain puncts in token streams, so track their depth.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (idx, tt) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(stream: TokenStream, type_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _attrs = take_field_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name in `{type_name}`, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!(
                    "serde_derive: struct variant `{type_name}::{name}` is not supported \
                     by the vendored derive"
                );
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.body {
        Body::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                let key = f.key();
                let insert = format!(
                    "m.insert({key:?}.to_string(), \
                     ::serde::Serialize::serialize_value(&self.{}));\n",
                    f.name
                );
                if let Some(pred) = &f.attrs.skip_serializing_if {
                    s.push_str(&format!("if !({pred})(&self.{}) {{ {insert} }}\n", f.name));
                } else {
                    s.push_str(&insert);
                }
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Body::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => {{\n\
                         let mut m = ::serde::Map::new();\n\
                         m.insert({vname:?}.to_string(), \
                         ::serde::Serialize::serialize_value(f0));\n\
                         ::serde::Value::Object(m)\n}}\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert({vname:?}.to_string(), \
                             ::serde::Value::Array(vec![{}]));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.body {
        Body::NamedStruct(fields) => {
            let mut s = format!(
                "let m = v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected object\"))?;\n"
            );
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                let key = f.key();
                let missing = if f.attrs.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!("::serde::Deserialize::missing_field({key:?})?")
                };
                s.push_str(&format!(
                    "{}: match m.get({key:?}) {{\n\
                     ::std::option::Option::Some(x) => \
                     ::serde::Deserialize::deserialize_value(x)?,\n\
                     ::std::option::Option::None => {missing},\n}},\n",
                    f.name
                ));
            }
            s.push_str("})");
            s
        }
        Body::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(v)?))"
        ),
        Body::TupleStruct(n) => {
            let mut s = format!(
                "let a = v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected array\"))?;\n\
                 if a.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"{name}: wrong tuple length\")); }}\n"
            );
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&a[{i}])?"))
                .collect();
            s.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                items.join(", ")
            ));
            s
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize_value(inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::deserialize_value(&a[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let a = inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"{name}::{vname}: expected array\"))?;\n\
                             if a.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"{name}::{vname}: wrong arity\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{other:?}}\"))),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (k, inner) = m.iter().next().expect(\"len checked\");\n\
                 match k.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{other:?}}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"{name}: expected variant string or single-key object\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
