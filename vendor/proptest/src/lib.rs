//! In-tree stand-in for the `proptest` crate.
//!
//! Provides the strategy surface the workspace's property tests use:
//! numeric range strategies, regex-subset string strategies, tuple and
//! `prop::collection::vec` combinators, `any::<T>()`, and the `proptest!`
//! / `prop_assert!` macros. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce
//! exactly across runs. Unlike upstream proptest there is no shrinking:
//! a failing case reports its inputs via the panic message only.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Drop-in replacement for `proptest::prelude::*`.
    pub use crate as prop;
    pub use crate::{any, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Per-test deterministic RNG (SplitMix64 seeded from the test name).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a label; the same label always yields the same stream.
    pub fn deterministic(label: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Unbiased rejection sampling.
        let cap = ((1u128 << 64) / n as u128) * n as u128;
        loop {
            let v = self.next_u64() as u128;
            if v < cap {
                return (v % n as u128) as u64;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-run configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The stand-in samples directly (no value trees, no
/// shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// Boxed/referenced strategies keep working.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(width as u64) as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                loop {
                    let v = self.start
                        + (self.end - self.start) * rng.unit_f64() as $t;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}

float_strategies!(f32, f64);

/// Marker returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Full-domain strategy for simple types (`any::<i32>()` etc).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, wide-range floats; keeps property code free of NaN noise.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

// String literals act as regex-subset strategies, like upstream proptest.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

mod regex {
    //! Generator for the regex subset used in strategy literals:
    //! literal characters, `[...]` classes with ranges, and the
    //! quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (unbounded capped at 8).

    use super::TestRng;

    enum Piece {
        Literal(char),
        Class(Vec<char>),
    }

    struct Quantified {
        piece: Piece,
        min: usize,
        max: usize,
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for q in &pieces {
            let span = q.max - q.min + 1;
            let count = q.min + rng.below(span as u64) as usize;
            for _ in 0..count {
                match &q.piece {
                    Piece::Literal(c) => out.push(*c),
                    Piece::Class(chars) => {
                        let idx = rng.below(chars.len() as u64) as usize;
                        out.push(chars[idx]);
                    }
                }
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Quantified> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let piece = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in strategy regex {pattern:?}"));
                    let class = expand_class(&chars[i + 1..close]);
                    i = close + 1;
                    Piece::Class(class)
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                    i += 1;
                    Piece::Literal(c)
                }
                c => {
                    i += 1;
                    Piece::Literal(c)
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern);
            out.push(Quantified { piece, min, max });
        }
        out
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| *i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in strategy regex {pattern:?}"));
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                if let Some((lo, hi)) = body.split_once(',') {
                    let lo = lo.trim().parse().expect("bad quantifier");
                    let hi = hi.trim().parse().expect("bad quantifier");
                    (lo, hi)
                } else {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i], body[i + 2]);
                for c in lo..=hi {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// A mapped strategy (see [`StrategyExt::prop_map`]).
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for MapStrategy<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Combinators available on every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> MapStrategy<Self, F> {
        MapStrategy { inner: self, f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`].
    pub trait SizeBounds {
        /// Inclusive (min, max) lengths.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeBounds for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl SizeBounds for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// Vector of values from `elem`, with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max - self.min + 1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Define property tests. Each function runs `cases` times with fresh
/// deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Per-function expansion behind [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Property assertion; panics (with context) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_word() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_]{0,5}"
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=4, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn regex_strategies_match_shape(
            word in arb_word(),
            pairs in prop::collection::vec(("[a-z]{1,3}", 0u32..9), 0..5),
        ) {
            prop_assert!(!word.is_empty() && word.len() <= 6);
            prop_assert!(word.chars().next().unwrap().is_ascii_lowercase());
            for (k, v) in &pairs {
                prop_assert!((1..=3).contains(&k.len()));
                prop_assert!(*v < 9);
            }
        }

        #[test]
        fn any_and_tuples(i in any::<i32>(), pair in (0u8..4, "x{1,2}")) {
            let _ = i;
            prop_assert!(pair.0 < 4);
            prop_assert!(!pair.1.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("same");
        let mut b = crate::TestRng::deterministic("same");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
