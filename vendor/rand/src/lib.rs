//! In-tree stand-in for the `rand` crate.
//!
//! Implements the trait surface the workspace uses — `RngCore`,
//! `SeedableRng` (with `seed_from_u64`), and `Rng` with `gen_range` over
//! integer and float ranges plus `gen_bool` — with unbiased rejection
//! sampling for integers. The stream values differ from upstream `rand`,
//! but are deterministic for a given seed, which is the property the
//! simulator relies on.

use std::ops::{Range, RangeInclusive};

/// The core random source: 32/64-bit output words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded through SplitMix64 to fill the seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Uniform `u64` in `[0, n)` by rejection sampling (unbiased).
fn uniform_u64<G: RngCore + ?Sized>(rng: &mut G, n: u64) -> u64 {
    debug_assert!(n > 0);
    let cap = ((1u128 << 64) / n as u128) * n as u128;
    loop {
        let v = rng.next_u64() as u128;
        if v < cap {
            return (v % n as u128) as u64;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn uniform_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, width) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, width as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                loop {
                    let u = uniform_f64(rng) as $t;
                    let v = self.start + (self.end - self.start) * u;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self) < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny xorshift source for exercising the trait surface.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = XorShift(0xDEADBEEF);
        for _ in 0..2000 {
            let v = r.gen_range(-0.1..0.1);
            assert!((-0.1..0.1).contains(&v));
            let i = r.gen_range(3u32..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(0usize..=4);
            assert!(j <= 4);
            let k = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&k));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = XorShift(42);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut r = XorShift(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
