//! In-tree stand-in for the `rayon` crate.
//!
//! The workspace only uses the slice surface of the parallel-iterator
//! prelude (`par_iter`, `par_iter_mut`, `par_windows`). Those are provided
//! here as *sequential* iterators: the returned types are the ordinary
//! `std::slice` iterators, so every adapter (`zip`, `map`, `sum`,
//! `for_each`, `enumerate`) keeps working, and kernels stay deterministic.

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.

    /// Shared-slice side of the parallel-iterator surface.
    pub trait ParallelSliceExt<T> {
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_windows`.
        fn par_windows(&self, size: usize) -> std::slice::Windows<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_windows(&self, size: usize) -> std::slice::Windows<'_, T> {
            self.windows(size)
        }

        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
    }

    /// Mutable-slice side of the parallel-iterator surface.
    pub trait ParallelSliceMutExt<T> {
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMutExt<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Genuinely parallel scoped fork/join, mirroring `rayon::scope`.
///
/// Unlike the sequential iterator surface above (kept sequential so the
/// numeric kernels stay deterministic), `scope` is backed by
/// [`std::thread::scope`]: every [`Scope::spawn`] starts a real OS thread
/// and all of them are joined before `scope` returns. The one divergence
/// from `rayon`'s signature is that spawned closures take no `&Scope`
/// argument (no nested spawning) — the tsdb query engine only needs a
/// flat fan-out.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Handle passed to the [`scope`] closure; spawns scoped worker threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn one worker; it is joined when the enclosing [`scope`] ends.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_surface_behaves_like_iterators() {
        let a = vec![1.0, 2.0, 3.0];
        let mut b = vec![0.0; 3];
        b.par_iter_mut()
            .zip(&a)
            .for_each(|(bi, &ai)| *bi = 2.0 * ai);
        assert_eq!(b, vec![2.0, 4.0, 6.0]);
        let s: f64 = a.par_iter().sum();
        assert_eq!(s, 6.0);
        assert_eq!(a.par_windows(2).count(), 2);
    }

    #[test]
    fn join_runs_both() {
        let (x, y) = super::join(|| 1, || 2);
        assert_eq!(x + y, 3);
    }
}
