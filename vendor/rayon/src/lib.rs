//! In-tree stand-in for the `rayon` crate.
//!
//! The workspace only uses the slice surface of the parallel-iterator
//! prelude (`par_iter`, `par_iter_mut`, `par_windows`). Those are provided
//! here as *sequential* iterators: the returned types are the ordinary
//! `std::slice` iterators, so every adapter (`zip`, `map`, `sum`,
//! `for_each`, `enumerate`) keeps working, and kernels stay deterministic.

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.

    /// Shared-slice side of the parallel-iterator surface.
    pub trait ParallelSliceExt<T> {
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_windows`.
        fn par_windows(&self, size: usize) -> std::slice::Windows<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_windows(&self, size: usize) -> std::slice::Windows<'_, T> {
            self.windows(size)
        }

        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
    }

    /// Mutable-slice side of the parallel-iterator surface.
    pub trait ParallelSliceMutExt<T> {
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMutExt<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_surface_behaves_like_iterators() {
        let a = vec![1.0, 2.0, 3.0];
        let mut b = vec![0.0; 3];
        b.par_iter_mut()
            .zip(&a)
            .for_each(|(bi, &ai)| *bi = 2.0 * ai);
        assert_eq!(b, vec![2.0, 4.0, 6.0]);
        let s: f64 = a.par_iter().sum();
        assert_eq!(s, 6.0);
        assert_eq!(a.par_windows(2).count(), 2);
    }

    #[test]
    fn join_runs_both() {
        let (x, y) = super::join(|| 1, || 2);
        assert_eq!(x + y, 3);
    }
}
