//! In-tree stand-in for the `serde_json` crate.
//!
//! Re-exports the value model from the vendored `serde` crate ([`Value`],
//! [`Map`], [`Number`], [`Error`]) and provides the conversion entry points
//! the workspace uses: [`to_value`], [`from_value`], [`to_string`],
//! [`to_string_pretty`], [`from_str`], and the `json!` macro.
//!
//! Output is deterministic: objects are backed by a `BTreeMap`, so keys
//! always serialize in sorted order.

use serde::{Deserialize, Serialize};

pub use serde::{Error, Map, Number, Value};

/// Serialize any [`Serialize`] into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Deserialize a typed value out of a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_value(&value)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::deserialize_value(&value)
}

/// Support module for the `json!` macro. Not part of the public API.
#[doc(hidden)]
pub fn __value_of<T: Serialize + ?Sized>(v: &T) -> Value {
    v.serialize_value()
}

/// Build a [`Value`] from JSON-like syntax, with expression interpolation.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Recursive muncher behind `json!`. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- arrays: accumulate elements in [] ------------------------------
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- objects: munch key tokens, then the value ----------------------
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ----- leaves ---------------------------------------------------------
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::__value_of(&$other)
    };
}

mod parse {
    //! Minimal recursive-descent JSON parser for [`from_str`].

    use super::{Error, Map, Value};

    pub fn parse(s: &str) -> Result<Value, Error> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::custom(format!("trailing characters at {pos}")));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => lit(b, pos, "null", Value::Null),
            Some(b't') => lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Value::String),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("expected , or ] at {pos}"))),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut map = Map::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return Err(Error::custom(format!("expected : at {pos}")));
                    }
                    *pos += 1;
                    let val = parse_value(b, pos)?;
                    map.insert(key, val);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error::custom(format!("expected , or }} at {pos}"))),
                    }
                }
            }
            Some(_) => parse_number(b, pos),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, Error> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at {pos}")))
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
        if b.get(*pos) != Some(&b'"') {
            return Err(Error::custom(format!("expected string at {pos}")));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let s = std::str::from_utf8(&b[*pos..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let text =
            std::str::from_utf8(&b[start..*pos]).map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("unexpected character at {start}")));
        }
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::from(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::from(i));
            }
        }
        text.parse::<f64>()
            .map(Value::from)
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "a": 1,
            "b": [1, 2.5, "x", null, true],
            "c": {"nested": {"deep": false}},
        });
        assert_eq!(v["a"], 1u64);
        assert_eq!(v["b"][1], 2.5f64);
        assert_eq!(v["c"]["nested"]["deep"], false);
        assert_eq!(json!([]), Value::Array(vec![]));
        assert_eq!(json!({}), Value::Object(Map::new()));
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn json_macro_interpolation() {
        let name = "cpu0";
        let load = 0.75;
        let v = json!({"name": name, "load": load, "sum": 1 + 2});
        assert_eq!(v["name"], "cpu0");
        assert_eq!(v["load"], 0.75);
        assert_eq!(v["sum"], 3u64);
        let arr = vec![1u64, 2, 3];
        assert_eq!(json!(arr)[2], 3u64);
    }

    #[test]
    fn to_string_is_deterministic_and_sorted() {
        let v = json!({"zebra": 1, "alpha": 2});
        assert_eq!(to_string(&v).unwrap(), r#"{"alpha":2,"zebra":1}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"alpha\": 2,"));
    }

    #[test]
    fn from_str_round_trip() {
        let text = r#"{"a": [1, -2, 3.5], "b": "x\ny", "c": null, "d": true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][1], -2i64);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["b"], "x\ny");
        assert!(v["c"].is_null());
        let round = from_str::<Value>(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, round);
    }

    #[test]
    fn from_str_rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
