//! In-tree stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module surface used by the workspace is provided:
//! unbounded MPSC channels with non-blocking drains, implemented over
//! `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer channels (subset of `crossbeam-channel`).

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value; fails only when every receiver hung up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Receive, blocking until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Iterate over values currently queued without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }

        /// Blocking iterator until the channel disconnects.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_drain() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(7).is_err());
        }
    }
}
