//! In-tree stand-in for the `serde` crate.
//!
//! Instead of upstream serde's visitor-based `Serializer`/`Deserializer`
//! machinery, this crate models serialization as conversion to and from a
//! JSON [`Value`] tree. The workspace only ever uses
//! `#[derive(Serialize, Deserialize)]` together with `serde_json` (no
//! hand-written impls, no alternative data formats), so the value-tree
//! model is fully sufficient and keeps the vendored code small and
//! auditable.
//!
//! The companion `serde_derive` crate generates impls of the two traits
//! below, and the companion `serde_json` crate re-exports [`Value`],
//! [`Map`], [`Number`], and [`Error`] plus the `json!` macro and the
//! string conversion entry points.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON object representation: key-ordered for deterministic output.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministic (sorted) key order.
    Object(Map),
}

/// A JSON number: unsigned integer, negative integer, or float.
///
/// Integer and float representations compare as distinct classes, matching
/// upstream `serde_json` (`1 != 1.0`).
#[derive(Debug, Clone, Copy)]
pub struct Number {
    n: N,
}

#[derive(Debug, Clone, Copy)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Wrap a float; returns `None` for NaN or infinities (not representable
    /// in JSON).
    pub fn from_f64(f: f64) -> Option<Number> {
        if f.is_finite() {
            Some(Number { n: N::Float(f) })
        } else {
            None
        }
    }

    /// The number as a float (always possible; integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.n {
            N::PosInt(u) => u as f64,
            N::NegInt(i) => i as f64,
            N::Float(f) => f,
        })
    }

    /// The number as an `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(u) => i64::try_from(u).ok(),
            N::NegInt(i) => Some(i),
            N::Float(_) => None,
        }
    }

    /// The number as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(u) => Some(u),
            N::NegInt(_) | N::Float(_) => None,
        }
    }

    /// True when [`Number::as_i64`] would succeed.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// True when [`Number::as_u64`] would succeed.
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    /// True when the number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.n, other.n) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::Float(a), N::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::PosInt(u) => write!(f, "{u}"),
            N::NegInt(i) => write!(f, "{i}"),
            N::Float(v) => {
                // Match serde_json's convention of keeping floats
                // recognizable as floats ("1.0", not "1").
                if v == v.trunc() && v.abs() < 1e16 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

macro_rules! number_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(u: $t) -> Number {
                Number { n: N::PosInt(u as u64) }
            }
        }
    )*};
}

macro_rules! number_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(i: $t) -> Number {
                if i < 0 {
                    Number { n: N::NegInt(i as i64) }
                } else {
                    Number { n: N::PosInt(i as u64) }
                }
            }
        }
    )*};
}

number_from_unsigned!(u8, u16, u32, u64, usize);
number_from_signed!(i8, i16, i32, i64, isize);

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Error for a required field that was absent.
    pub fn missing_field(field: &str) -> Error {
        Error {
            msg: format!("missing field `{field}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the JSON [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` to a value tree.
    fn serialize_value(&self) -> Value;
}

/// Conversion out of the JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a value tree node.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent from the input object.
    ///
    /// The default is an error; `Option<T>` overrides this to yield `None`,
    /// matching upstream serde's treatment of optional fields.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

// ---------------------------------------------------------------------------
// Value inherent API
// ---------------------------------------------------------------------------

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for `Value::Bool`.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// True for `Value::Number`.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True for `Value::String`.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True for `Value::Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True for `Value::Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Borrow the boolean, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Number as a float, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Number as an `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Number as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Borrow the string contents, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the array, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutably borrow the array, if any.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the object map, if any.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrow the object map, if any.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (non-panicking).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Mutable object member lookup (non-panicking).
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|m| m.get_mut(key))
    }

    /// Replace `self` with `Null`, returning the previous value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifies missing keys on objects (as upstream serde_json does).
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => m.entry(key.to_string()).or_insert(Value::Null),
            _ => panic!("cannot index non-object value with string key {key:?}"),
        }
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;

    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        &mut self[key.as_str()]
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            _ => panic!("cannot index non-array value with {idx}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

// Convenience comparisons against literals, mirroring upstream serde_json.
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n.is_f64() && n.as_f64() == Some(*other))
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => *n == Number::from(*other),
                    _ => false,
                }
            }
        }
    )*};
}

value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! value_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::from(v))
            }
        }
    )*};
}

value_from_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Number::from_f64(v).map_or(Value::Null, Value::Number)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Value {
        Value::Array(a)
    }
}

// ---------------------------------------------------------------------------
// JSON text emission (used by serde_json's to_string / to_string_pretty)
// ---------------------------------------------------------------------------

/// Append `v` as JSON text to `out`; `indent` of `Some(n)` pretty-prints
/// with `n`-space indentation, `None` emits compact text.
pub fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

macro_rules! serialize_via_from {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

serialize_via_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn serialize_value(&self) -> Value {
        // Collected through the BTreeMap-backed object, so hash order never
        // leaks into serialized output.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
            self.3.serialize_value(),
        ])
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                if let Some(u) = n.as_u64() {
                    return <$t>::try_from(u)
                        .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")));
                }
                if let Some(i) = n.as_i64() {
                    return <$t>::try_from(i)
                        .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")));
                }
                Err(Error::custom(concat!("expected integer ", stringify!($t))))
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, item)| Ok((k.clone(), V::deserialize_value(item)?)))
            .collect()
    }
}

impl<V: Deserialize, S> Deserialize for std::collections::HashMap<String, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, item)| Ok((k.clone(), V::deserialize_value(item)?)))
            .collect()
    }
}

fn tuple_slots(v: &Value, n: usize) -> Result<&[Value], Error> {
    let a = v
        .as_array()
        .ok_or_else(|| Error::custom("expected tuple array"))?;
    if a.len() != n {
        return Err(Error::custom(format!(
            "expected tuple of length {n}, got {}",
            a.len()
        )));
    }
    Ok(a)
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let a = tuple_slots(v, 2)?;
        Ok((A::deserialize_value(&a[0])?, B::deserialize_value(&a[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let a = tuple_slots(v, 3)?;
        Ok((
            A::deserialize_value(&a[0])?,
            B::deserialize_value(&a[1])?,
            C::deserialize_value(&a[2])?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let a = tuple_slots(v, 4)?;
        Ok((
            A::deserialize_value(&a[0])?,
            B::deserialize_value(&a[1])?,
            C::deserialize_value(&a[2])?,
            D::deserialize_value(&a[3])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_keep_int_float_distinction() {
        assert_eq!(Value::from(1i64), Value::from(1u64));
        assert_ne!(Value::from(1i64), Value::from(1.0));
        assert_eq!(Value::from(7.5), Value::from(7.5));
        assert_eq!(Value::from(f64::NAN), Value::Null);
    }

    #[test]
    fn float_display_keeps_decimal_point() {
        assert_eq!(Value::from(1.0).to_string(), "1.0");
        assert_eq!(Value::from(7.5).to_string(), "7.5");
        assert_eq!(Value::from(42u64).to_string(), "42");
        assert_eq!(Value::from(-3i64).to_string(), "-3");
    }

    #[test]
    fn index_and_auto_vivify() {
        let mut v = Value::Null;
        v["a"]["b"] = Value::from(5u64);
        assert_eq!(v["a"]["b"].as_u64(), Some(5));
        assert!(v["missing"].is_null());
        assert_eq!(v["a"]["b"], 5u64);
    }

    #[test]
    fn escaping_round_trip_shapes() {
        let mut out = String::new();
        write_value(&mut out, &Value::String("a\"b\\c\nd".to_string()), None, 0);
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn option_missing_field_yields_none() {
        let r: Option<String> = <Option<String> as Deserialize>::missing_field("x").unwrap();
        assert!(r.is_none());
        let e = <String as Deserialize>::missing_field("x");
        assert!(e.is_err());
    }

    #[test]
    fn collections_round_trip() {
        let mut m: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        m.insert("a".into(), vec![1, 2, 3]);
        let v = m.serialize_value();
        let back: BTreeMap<String, Vec<u32>> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(m, back);
        let t = ("x".to_string(), 2u64, 3.5f64);
        let tv = t.serialize_value();
        let tb: (String, u64, f64) = Deserialize::deserialize_value(&tv).unwrap();
        assert_eq!(t, tb);
    }
}
