//! In-tree stand-in for the `parking_lot` crate.
//!
//! Provides the non-poisoning `Mutex`/`RwLock` API surface the workspace
//! uses, implemented over `std::sync`. A poisoned std lock (a thread
//! panicked while holding it) is recovered transparently, matching
//! parking_lot's "no poisoning" semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
