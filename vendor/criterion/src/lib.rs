//! In-tree stand-in for the `criterion` crate.
//!
//! Provides the benchmarking API surface the workspace's `harness = false`
//! bench targets use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `black_box`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//! Measurements are simple wall-clock medians over a handful of batches;
//! there is no statistical analysis, HTML report, or baseline storage.

use std::fmt;
use std::hint;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group: function name + parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a displayed parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Work-per-iteration declaration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark driver. Holds global defaults for sampling.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            group_name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    group_name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare work-per-iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.group_name, id.into().label);
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Run one benchmark that borrows a prepared input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.group_name, id.into().label);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_benchmark(&label, self.sample_size, self.throughput, &mut wrapped);
        self
    }

    /// End the group (upstream criterion finalizes reports here).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `iters` calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate the per-batch iteration count so one batch is neither
    // trivially short nor unboundedly long.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        if b.elapsed_ns > 1_000_000 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            f(&mut b);
            b.elapsed_ns as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];

    let mut line = format!("bench: {label:<40} {:>12} /iter", format_ns(median));
    if let Some(tp) = throughput {
        let (amount, unit) = match tp {
            Throughput::Bytes(n) => (n as f64, "B"),
            Throughput::Elements(n) => (n as f64, "elem"),
        };
        let per_sec = amount / (median / 1e9);
        line.push_str(&format!("  ({per_sec:.3e} {unit}/s)"));
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Collect benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        let mut group = c.benchmark_group("example");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(8));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 4u32), &4u32, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn harness_runs() {
        benches();
    }
}
