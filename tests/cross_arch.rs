//! Cross-architecture integration: the abstraction layer lets identical
//! profiling code run on Intel and AMD targets — the same generic events,
//! different PMU formulas underneath (the §V-D use case of §IV-A).

use pmove::core::abstraction::PmuUtils;
use pmove::core::profiles::stream_kernel_profile;
use pmove::core::telemetry::pinning::PinningStrategy;
use pmove::core::telemetry::scenario_b::{recall_generic_total, ProfileRequest};
use pmove::core::PMoveDaemon;
use pmove::hwsim::vendor::IsaExt;
use pmove::kernels::StreamKernel;

/// Profile the same DDOT kernel with the same generic events on every
/// target; the recalled totals must match the analytic truth everywhere.
#[test]
fn same_generic_events_on_all_four_targets() {
    let n: u64 = 1 << 32;
    let truth_flops = 2.0 * n as f64;
    let truth_mem_ops = 2.0 * n as f64; // scalar loads, one element each

    for key in ["skx", "icl", "csl", "zen3"] {
        let mut d = PMoveDaemon::for_preset(key).expect("preset");
        let threads = d.machine.spec.total_cores();
        let request = ProfileRequest {
            profile: stream_kernel_profile(StreamKernel::Ddot, n, threads, IsaExt::Scalar),
            command: "ddot".into(),
            // TOTAL_DP_FLOPS and TOTAL_MEMORY_OPERATIONS are common
            // events: mapped on every PMU, via different formulas.
            generic_events: vec!["TOTAL_DP_FLOPS".into(), "TOTAL_MEMORY_OPERATIONS".into()],
            freq_hz: 4.0,
            pinning: PinningStrategy::Balanced,
        };
        let outcome = d.profile(&request).expect("profiling succeeds");
        let flops = recall_generic_total(
            &d.ts,
            &d.layer,
            key,
            "TOTAL_DP_FLOPS",
            &outcome.observation.id,
        )
        .unwrap();
        let mem = recall_generic_total(
            &d.ts,
            &d.layer,
            key,
            "TOTAL_MEMORY_OPERATIONS",
            &outcome.observation.id,
        )
        .unwrap();
        assert!(
            (flops - truth_flops).abs() / truth_flops < 0.1,
            "{key}: flops {flops:.3e} vs {truth_flops:.3e}"
        );
        assert!(
            (mem - truth_mem_ops).abs() / truth_mem_ops < 0.1,
            "{key}: mem {mem:.3e} vs {truth_mem_ops:.3e}"
        );
    }
}

/// The pmu_utils façade resolves the same generic event to
/// vendor-specific formulas (Table I's "different names" row).
#[test]
fn pmu_utils_resolves_per_vendor() {
    let d = PMoveDaemon::for_preset("csl").expect("preset");
    let utils = PmuUtils::new(&d.layer);
    let intel = utils.get("csl", "TOTAL_MEMORY_OPERATIONS").unwrap();
    let amd = utils.get("zen3", "TOTAL_MEMORY_OPERATIONS").unwrap();
    assert!(intel[0].contains("MEM_INST_RETIRED"));
    assert!(amd[0].contains("LS_DISPATCH"));
    assert_eq!(intel[1], "+");
    assert_eq!(amd[1], "+");
}

/// Every common generic event is mapped on every builtin PMU, and the
/// required HW events exist in the corresponding catalogs.
#[test]
fn common_events_resolve_to_real_hw_events_everywhere() {
    let d = PMoveDaemon::for_preset("icl").expect("preset");
    for key in ["skx", "icl", "csl", "zen3"] {
        assert!(d.layer.missing_common_events(key).is_empty(), "{key}");
        let machine = pmove::hwsim::Machine::preset(key).unwrap();
        let catalog = pmove::hwsim::EventCatalog::for_arch(machine.spec.arch);
        for generic in pmove::core::abstraction::events::COMMON_EVENTS {
            for hw in d.layer.required_hw_events(key, generic).unwrap() {
                assert!(
                    catalog.supports(&hw),
                    "{key}: {generic} needs {hw} which the catalog lacks"
                );
            }
        }
    }
}

/// Pinning strategies produce valid, distinct affinities on a two-socket
/// machine and the observation records them.
#[test]
fn pinning_strategies_distinct_on_skx() {
    let machine = pmove::hwsim::Machine::preset("skx").unwrap();
    let compact = PinningStrategy::Compact.assign(&machine, 8);
    let balanced = PinningStrategy::Balanced.assign(&machine, 8);
    let numa_compact = PinningStrategy::NumaCompact.assign(&machine, 8);
    assert_ne!(compact, balanced);
    assert_ne!(compact, numa_compact);
    // Balanced touches both sockets; numa-compact stays on node 0.
    assert_eq!(
        PinningStrategy::nodes_touched(&machine, &balanced),
        vec![0, 1]
    );
    assert_eq!(
        PinningStrategy::nodes_touched(&machine, &numa_compact),
        vec![0]
    );
}
