//! Fidelity tests for the paper's four listings: the framework must
//! produce artifacts of exactly those shapes.

use pmove::core::profiles::stream_kernel_profile;
use pmove::core::telemetry::pinning::PinningStrategy;
use pmove::core::telemetry::scenario_b::ProfileRequest;
use pmove::core::PMoveDaemon;
use pmove::hwsim::vendor::IsaExt;
use pmove::kernels::StreamKernel;
use serde_json::json;

/// Listing 1: the minimal Grafana dashboard JSON parses and the generated
/// dashboards carry the same target fields (datasource/uid/measurement/
/// params) "stored in STD and used to generate panel".
#[test]
fn listing1_dashboard_shape() {
    let verbatim = json!({
        "id": 1,
        "panels": [
            {"id": 1,
             "targets": [
                 {"datasource": {"type": "influxdb", "uid": "UUkm1881"},
                  "measurement": "perfevent_hwcounters_FP_ARITH_SCALAR_SINGLE_value",
                  "params": "_cpu0"}]}],
        "time": {"from": "now-5m", "to": "now"}
    });
    let parsed = pmove::core::dashboard::Dashboard::from_json(&verbatim).unwrap();
    assert_eq!(parsed.to_json(), verbatim);

    // Generated dashboards emit the same schema with the KB's uid.
    let d = PMoveDaemon::for_preset("icl").unwrap();
    let cpu0 = d.kb.by_name("cpu0").unwrap().id.clone();
    let dash = pmove::core::dashboard::gen::focus_dashboard(&d.kb, &cpu0, false).unwrap();
    let j = dash.to_json();
    let target = &j["panels"][0]["targets"][0];
    assert_eq!(target["datasource"]["type"], json!("influxdb"));
    assert_eq!(target["datasource"]["uid"], json!("UUkm1881"));
    assert!(target["measurement"].is_string());
    assert_eq!(target["params"], json!("_cpu0"));
}

/// Listings 2 and 3: the observation entry carries id/command/affinity/
/// time/metrics plus an on-the-fly report, and its auto-generated queries
/// follow the `SELECT "f", ... FROM "m" WHERE tag='uuid'` shape — all of
/// them parseable by the query engine.
#[test]
fn listing2_and_3_observation_artifacts() {
    let mut d = PMoveDaemon::for_preset("skx").unwrap();
    let request = ProfileRequest {
        profile: stream_kernel_profile(StreamKernel::Daxpy, 1 << 34, 4, IsaExt::Scalar),
        command: "daxpy -n 17179869184 -t 4".into(),
        generic_events: vec!["SCALAR_DP_FLOPS".into(), "RAPL_ENERGY_PKG".into()],
        freq_hz: 4.0,
        pinning: PinningStrategy::NumaBalanced,
    };
    let outcome = d.profile(&request).unwrap();
    let doc = outcome.observation.to_json();

    // Listing-2 fields.
    assert_eq!(doc["@type"], json!("ObservationInterface"));
    for key in [
        "observation",
        "command",
        "affinity",
        "time",
        "metrics",
        "report",
    ] {
        assert!(doc.get(key).is_some(), "missing {key}");
    }
    // The id is a UUID shape.
    let id = doc["observation"].as_str().unwrap();
    assert_eq!(id.split('-').count(), 5);
    // NUMA-balanced on skx touches both nodes → RAPL fields _node0,_node1.
    let rapl_query = outcome
        .observation
        .queries()
        .into_iter()
        .find(|q| q.contains("RAPL_ENERGY_PKG"))
        .unwrap();
    assert!(
        rapl_query.contains("\"_node0\", \"_node1\""),
        "{rapl_query}"
    );
    assert!(rapl_query.contains(&format!("WHERE tag='{id}'")));
    // Every query parses and executes.
    for q in outcome.observation.queries() {
        let r = d.ts.query(&q).expect("query executes");
        assert!(!r.rows.is_empty());
    }
}

/// Listing 4: the GPU Interface entry — `@type`/`@id`/`@context`, model
/// and NUMA properties, `SWTelemetry` with SamplerName/DBName, and
/// `HWTelemetry` with `PMUName: ncu` and the compute-memory throughput
/// metric's flattened DB name.
#[test]
fn listing4_gpu_interface_shape() {
    let mut spec = pmove::hwsim::MachineSpec::csl();
    spec.gpus.push(pmove::hwsim::gpu::GpuSpec::gv100());
    let machine = pmove::hwsim::Machine::new(spec);
    let kb =
        pmove::core::kb::builder::build_kb(&pmove::core::probe::ProbeReport::collect(&machine))
            .unwrap();
    let gpu = kb.by_name("gpu0").unwrap();
    let doc = pmove::jsonld::serialize::interface_to_json(gpu);

    assert_eq!(doc["@type"], json!("Interface"));
    assert_eq!(doc["@context"], json!("dtmi:dtdl:context;2"));
    assert!(doc["@id"].as_str().unwrap().contains(":gpu0;1"));
    let contents = doc["contents"].as_array().unwrap();
    let model = contents
        .iter()
        .find(|c| c["name"] == json!("model"))
        .expect("model property");
    assert_eq!(model["@type"], json!("Property"));
    assert_eq!(model["description"], json!("NVIDIA Quadro GV100"));
    let sw = contents
        .iter()
        .find(|c| c["@type"] == json!("SWTelemetry") && c["SamplerName"] == json!("nvidia.memused"))
        .expect("nvidia.memused SW telemetry");
    assert_eq!(sw["DBName"], json!("nvidia_memused"));
    let hw = contents
        .iter()
        .find(|c| {
            c["@type"] == json!("HWTelemetry")
                && c["SamplerName"] == json!("gpu__compute_memory_access_throughput")
        })
        .expect("ncu HW telemetry");
    assert_eq!(hw["PMUName"], json!("ncu"));
    assert_eq!(
        hw["DBName"],
        json!("ncu_gpu__compute_memory_access_throughput")
    );
    assert_eq!(hw["FieldName"], json!("_gpu0"));
}

/// §IV-A's config grammar and the pmu_utils example output.
#[test]
fn section4a_pmu_utils_example() {
    let d = PMoveDaemon::for_preset("skx").unwrap();
    let utils = pmove::core::abstraction::PmuUtils::new(&d.layer);
    // The paper's example uses "skl"; our skx mapping carries the same
    // formula.
    let got = utils.get("skx", "TOTAL_MEMORY_OPERATIONS").unwrap();
    assert_eq!(
        got,
        vec![
            "MEM_INST_RETIRED:ALL_LOADS".to_string(),
            "+".to_string(),
            "MEM_INST_RETIRED:ALL_STORES".to_string(),
        ]
    );
}
