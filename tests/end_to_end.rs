//! End-to-end integration: the full daemon lifecycle across crates —
//! probe → KB → docdb, Scenario A monitoring into the tsdb, Scenario B
//! kernel profiling, recall through auto-generated queries, dashboard
//! generation and rendering, benchmark interfaces.

use pmove::core::dashboard::{gen, render};
use pmove::core::kb::store;
use pmove::core::profiles::stream_kernel_profile;
use pmove::core::telemetry::pinning::PinningStrategy;
use pmove::core::telemetry::scenario_b::{recall_generic_total, ProfileRequest};
use pmove::core::PMoveDaemon;
use pmove::hwsim::vendor::IsaExt;
use pmove::kernels::StreamKernel;
use serde_json::json;

fn daemon() -> PMoveDaemon {
    PMoveDaemon::for_preset("icl").expect("icl preset")
}

#[test]
fn steps_0_to_3_produce_queryable_kb() {
    let d = daemon();
    // The KB is in memory and in the doc DB.
    assert!(d.kb.len() > 40);
    let col = d.doc.collection(store::KB_COLLECTION);
    assert_eq!(col.len(), d.kb.len());
    // Mongo-style query over KB documents works.
    let interfaces = col
        .find(&json!({"@type": "Interface", "componentType": "thread"}))
        .unwrap();
    assert_eq!(interfaces.len(), 16);
}

#[test]
fn scenario_a_feeds_dashboards() {
    let mut d = daemon();
    d.monitor(20.0, 2.0);
    let dash = gen::level_dashboard(&d.kb, "thread").expect("dashboard");
    let text = render::render_dashboard(&d.ts, &dash, None);
    // The per-cpu idle panel rendered real sparkline data.
    assert!(text.contains("kernel_percpu_cpu_idle"));
    assert!(text.contains("n=40"), "expected 40 samples:\n{text}");
}

#[test]
fn scenario_b_roundtrip_through_queries() {
    let mut d = daemon();
    let threads = d.machine.spec.total_cores();
    let n: u64 = 1 << 32;
    let request = ProfileRequest {
        profile: stream_kernel_profile(StreamKernel::Daxpy, n, threads, IsaExt::Scalar),
        command: "daxpy -n 4294967296".into(),
        generic_events: vec![
            "SCALAR_DP_FLOPS".into(),
            "TOTAL_MEMORY_OPERATIONS".into(),
            "RAPL_ENERGY_PKG".into(),
        ],
        // 4 Hz: below the stale-read threshold, so recalled totals only
        // carry counter noise (no batched zeros).
        freq_hz: 4.0,
        pinning: PinningStrategy::Compact,
    };
    let outcome = d.profile(&request).expect("profiling succeeds");
    let obs = &outcome.observation;

    // Every auto-generated query parses and returns data.
    for q in obs.queries() {
        let r = d.ts.query(&q).expect("query runs");
        assert!(!r.rows.is_empty(), "no rows for {q}");
    }

    // The recalled FLOP total matches the analytic ground truth within
    // sampling noise (daxpy: 2 flops per element).
    let truth = 2.0 * n as f64;
    let recalled =
        recall_generic_total(&d.ts, &d.layer, "icl", "SCALAR_DP_FLOPS", &obs.id).unwrap();
    assert!(
        (recalled - truth).abs() / truth < 0.08,
        "recalled {recalled:.3e} truth {truth:.3e}"
    );

    // The observation is persisted in the doc DB with its metadata.
    let doc = d
        .doc
        .collection(store::OBS_COLLECTION)
        .find_one(&json!({"observation": obs.id}))
        .unwrap()
        .expect("persisted");
    assert_eq!(doc["pinning"], json!("compact"));
    assert_eq!(doc["command"], json!("daxpy -n 4294967296"));
}

#[test]
fn focus_and_subtree_dashboards_scope_fields_correctly() {
    let mut d = daemon();
    d.monitor(10.0, 1.0);
    let cpu2 = d.kb.by_name("cpu2").unwrap().id.clone();
    let focus = gen::focus_dashboard(&d.kb, &cpu2, false).unwrap();
    assert!(focus
        .panels
        .iter()
        .all(|p| p.targets.iter().all(|t| t.params == "_cpu2")));

    let core0 = d.kb.by_name("core0").unwrap().id.clone();
    let sub = gen::subtree_dashboard(&d.kb, &core0).unwrap();
    // A core's subtree holds exactly its two SMT threads.
    let idle = sub
        .panels
        .iter()
        .find(|p| p.title == "kernel_percpu_cpu_idle")
        .unwrap();
    assert_eq!(idle.targets.len(), 2);
}

#[test]
fn benchmarks_recorded_and_reloadable() {
    let mut d = daemon();
    d.run_stream_benchmark(1 << 22).unwrap();
    d.run_hpcg_benchmark(6, 6, 6).unwrap();
    let col = d.doc.collection(store::BENCH_COLLECTION);
    assert_eq!(col.len(), 2);
    let stream = col
        .find_one(&json!({"benchmark": "stream"}))
        .unwrap()
        .expect("stream benchmark stored");
    assert!(stream["results"].as_array().unwrap().len() >= 4);
}

#[test]
fn anomaly_scan_over_monitored_data() {
    let mut d = daemon();
    d.monitor(30.0, 2.0);
    // The ambient system state is roughly uniform across threads: the
    // scan should not fire at a high threshold.
    let found = pmove::core::analysis::anomaly_scan(&d.ts, "kernel_percpu_cpu_idle", None, 3.5);
    assert!(found.len() <= 1, "unexpected anomalies: {found:?}");
}

#[test]
fn kb_reload_matches_live_kb() {
    let d = daemon();
    let loaded = store::load_interfaces(&d.doc, "icl").unwrap();
    assert_eq!(loaded.len(), d.kb.len());
    for (a, b) in loaded.iter().zip(&d.kb.interfaces) {
        assert_eq!(a, b);
    }
}
