//! Cross-validation of the analytic locality model against the real
//! set-associative cache simulator, using actual SpMV access traces.
//!
//! The figure-level claims (RCM improves locality, hence runtime) rest on
//! the analytic `x_locality` score; here the score is checked against a
//! trace-driven LRU simulation of the x-vector gathers.

use pmove::hwsim::cache_model::CacheSim;
use pmove::spmv::csr::Csr;
use pmove::spmv::reorder::Reordering;
use pmove::spmv::suite::SuiteMatrix;

/// Simulate the x-gather stream of one full SpMV through a cache.
fn simulate_x_gathers(a: &Csr, cache_bytes: u64) -> f64 {
    let mut sim = CacheSim::new(cache_bytes, 8, 64);
    for r in 0..a.rows {
        let (cols, _) = a.row(r);
        for &c in cols {
            sim.access(c as u64 * 8); // x[c], 8-byte elements
        }
    }
    sim.hit_ratio()
}

#[test]
fn rcm_improves_measured_hit_ratio_on_meshes() {
    let a = SuiteMatrix::Hugetrace00020.generate(2.0);
    let r = Reordering::Rcm.apply(&a);
    let cache = 64 * 1024; // L2-slice-sized probe
    let orig = simulate_x_gathers(&a, cache);
    let rcm = simulate_x_gathers(&r, cache);
    assert!(
        rcm > orig + 0.2,
        "trace-driven hit ratio: orig {orig:.3} rcm {rcm:.3}"
    );
    // RCM'd mesh gathers are nearly all hits.
    assert!(rcm > 0.9, "rcm hit ratio {rcm:.3}");
}

#[test]
fn analytic_score_orders_matrices_like_the_simulator() {
    // The analytic x_locality score and the trace-driven hit ratio must
    // agree on the *ordering* of matrices (that is all the execution
    // model needs).
    let cache = 64 * 1024;
    let mut scored: Vec<(f64, f64)> = Vec::new();
    for m in [SuiteMatrix::Hugetrace00020, SuiteMatrix::Adaptive] {
        let a = m.generate(2.0);
        let analytic = pmove::spmv::bandwidth::x_locality(&a, cache);
        let measured = simulate_x_gathers(&a, cache);
        scored.push((analytic, measured));
        let r = Reordering::Rcm.apply(&a);
        scored.push((
            pmove::spmv::bandwidth::x_locality(&r, cache),
            simulate_x_gathers(&r, cache),
        ));
    }
    // Pairwise order agreement (with a slack band for near-ties).
    for i in 0..scored.len() {
        for j in 0..scored.len() {
            let (a1, m1) = scored[i];
            let (a2, m2) = scored[j];
            if a1 > a2 + 0.15 {
                assert!(
                    m1 > m2 - 0.05,
                    "analytic said {a1:.2} > {a2:.2} but measured {m1:.2} vs {m2:.2}"
                );
            }
        }
    }
}

#[test]
fn random_ordering_destroys_locality_in_both_models() {
    let a = SuiteMatrix::Hugetrace00020.generate(2.0);
    let rcm = Reordering::Rcm.apply(&a);
    let rand = Reordering::Random(9).apply(&rcm);
    let cache = 64 * 1024;
    assert!(simulate_x_gathers(&rcm, cache) > simulate_x_gathers(&rand, cache) + 0.2);
    assert!(
        pmove::spmv::bandwidth::x_locality(&rcm, cache)
            > pmove::spmv::bandwidth::x_locality(&rand, cache)
    );
}

#[test]
fn small_working_sets_hit_regardless_of_order() {
    // A matrix whose whole x fits in cache: ordering is irrelevant, and
    // both models agree everything hits after the cold pass.
    let a = SuiteMatrix::HumanGene1.generate(0.3); // n=450, x = 3.6 KB
    let cache = 256 * 1024;
    let hit = simulate_x_gathers(&a, cache);
    assert!(hit > 0.95, "hit {hit:.3}");
    assert!(pmove::spmv::bandwidth::x_locality(&a, cache) > 0.99);
}
