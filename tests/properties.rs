//! Property-based tests over core data structures and invariants.

use proptest::prelude::*;
use serde_json::json;

// ---------------------------------------------------------------------
// tsdb: line protocol and query invariants
// ---------------------------------------------------------------------

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,12}"
}

proptest! {
    /// Any point survives a line-protocol round trip.
    #[test]
    fn line_protocol_roundtrip(
        measurement in arb_ident(),
        tag_k in arb_ident(),
        tag_v in arb_ident(),
        field in arb_ident(),
        value in -1e12f64..1e12,
        int_val in any::<i32>(),
        ts in -1_000_000_000i64..1_000_000_000,
    ) {
        let p = pmove::tsdb::Point::new(measurement)
            .tag(tag_k, tag_v)
            .field(field, value)
            .field("i", int_val as i64)
            .timestamp(ts);
        let line = pmove::tsdb::line_protocol::render(&p);
        let back = pmove::tsdb::line_protocol::parse(&line).unwrap();
        prop_assert_eq!(back, p);
    }

    /// Sum over group-by buckets equals the whole-range sum.
    #[test]
    fn bucketed_sums_partition(values in prop::collection::vec(-1e6f64..1e6, 1..60)) {
        let db = pmove::tsdb::Database::new("prop");
        for (t, v) in values.iter().enumerate() {
            db.write_point(
                pmove::tsdb::Point::new("m").field("v", *v).timestamp(t as i64),
            ).unwrap();
        }
        let total = db.query("SELECT sum(\"v\") FROM \"m\"").unwrap();
        let bucketed = db.query("SELECT sum(\"v\") FROM \"m\" GROUP BY time(7)").unwrap();
        let t: f64 = total.rows[0].values["sum(v)"].unwrap();
        let b: f64 = bucketed.rows.iter().filter_map(|r| r.values["sum(v)"]).sum();
        prop_assert!((t - b).abs() < 1e-6 * t.abs().max(1.0));
    }
}

// ---------------------------------------------------------------------
// docdb: filter and update invariants
// ---------------------------------------------------------------------

proptest! {
    /// find(eq) returns exactly the docs whose value was inserted.
    #[test]
    fn docdb_equality_complete(keys in prop::collection::vec(0u32..20, 1..40)) {
        let col = pmove::docdb::Collection::new("prop");
        for (i, k) in keys.iter().enumerate() {
            col.insert_one(json!({"_id": format!("d{i}"), "k": k})).unwrap();
        }
        for probe in 0u32..20 {
            let expected = keys.iter().filter(|&&k| k == probe).count();
            let got = col.count(&json!({"k": probe})).unwrap();
            prop_assert_eq!(got, expected);
        }
    }

    /// $inc is additive: applying n increments of d equals one of n*d.
    #[test]
    fn docdb_inc_additive(n in 1usize..10, d in -100i64..100) {
        let col = pmove::docdb::Collection::new("prop");
        col.insert_one(json!({"_id": "x", "v": 0})).unwrap();
        for _ in 0..n {
            col.update_many(&json!({"_id": "x"}), &json!({"$inc": {"v": d}})).unwrap();
        }
        let doc = col.find_one(&json!({"_id": "x"})).unwrap().unwrap();
        prop_assert_eq!(doc["v"].as_f64().unwrap(), (n as i64 * d) as f64);
    }
}

// ---------------------------------------------------------------------
// spmv: structural and numeric invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CSR built from random COO entries is always structurally valid and
    /// preserves the per-(row, col) sums.
    #[test]
    fn csr_from_coo_valid(
        entries in prop::collection::vec((0u32..30, 0u32..30, -10.0f64..10.0), 0..150)
    ) {
        let mut coo = pmove::spmv::coo::Coo::new(30, 30);
        for (r, c, v) in &entries {
            coo.push(*r, *c, *v);
        }
        let m = pmove::spmv::csr::Csr::from_coo(&coo);
        prop_assert!(m.validate().is_ok());
        // Sum of all values is preserved.
        let coo_sum: f64 = entries.iter().map(|(_, _, v)| v).sum();
        let csr_sum: f64 = m.values.iter().sum();
        prop_assert!((coo_sum - csr_sum).abs() < 1e-9);
    }

    /// Every reordering strategy yields a true permutation and PAPᵀ
    /// preserves nnz on symmetric matrices.
    #[test]
    fn reorderings_are_permutations(side in 4usize..14, seed in 0u64..500) {
        let m = pmove::spmv::gen::mesh2d(side, side, seed, true);
        for strat in [
            pmove::spmv::Reordering::Rcm,
            pmove::spmv::Reordering::Degree,
            pmove::spmv::Reordering::Random(seed),
        ] {
            let p = strat.permutation(&m);
            let mut seen = vec![false; p.len()];
            for &v in &p {
                prop_assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
            let r = strat.apply(&m);
            prop_assert!(r.validate().is_ok());
            prop_assert_eq!(r.nnz(), m.nnz());
        }
    }

    /// Merge-path SpMV equals the sequential reference for any partition
    /// count on random matrices.
    #[test]
    fn merge_spmv_matches_reference(
        n in 5usize..60,
        row_nnz in 1usize..8,
        seed in 0u64..1000,
        parts in 1usize..40,
    ) {
        let a = pmove::spmv::gen::uniform_random(n, row_nnz, seed);
        let x = pmove::spmv::verify::test_vector(a.cols);
        let mut y_ref = vec![0.0; a.rows];
        pmove::spmv::row::spmv_seq(&a, &x, &mut y_ref);
        let mut y = vec![0.0; a.rows];
        pmove::spmv::merge::spmv_merge(&a, &x, &mut y, parts);
        for (u, v) in y_ref.iter().zip(&y) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    /// Merge-path search: coordinates are monotone and consume the whole
    /// path.
    #[test]
    fn merge_path_search_consistent(
        row_lens in prop::collection::vec(0u32..10, 1..30)
    ) {
        let mut ends = Vec::with_capacity(row_lens.len());
        let mut acc = 0;
        for l in &row_lens {
            acc += l;
            ends.push(acc);
        }
        let nnz = acc as usize;
        let path = ends.len() + nnz;
        let mut prev = pmove::spmv::merge::merge_path_search(0, &ends, nnz);
        prop_assert_eq!(prev.row + prev.nz, 0);
        for d in 1..=path {
            let cur = pmove::spmv::merge::merge_path_search(d, &ends, nnz);
            prop_assert_eq!(cur.row + cur.nz, d);
            prop_assert!(cur.row >= prev.row && cur.nz >= prev.nz);
            prev = cur;
        }
        prop_assert_eq!(prev.row, ends.len());
        prop_assert_eq!(prev.nz, nnz);
    }
}

// ---------------------------------------------------------------------
// jsonld / abstraction: parser invariants
// ---------------------------------------------------------------------

proptest! {
    /// DTMIs built from valid segments always parse back to themselves.
    #[test]
    fn dtmi_roundtrip(
        segs in prop::collection::vec("[a-z][a-z0-9]{0,8}", 1..5),
        version in 1u32..100,
    ) {
        let d = pmove::jsonld::Dtmi::new(segs, version).unwrap();
        let back = pmove::jsonld::Dtmi::parse(&d.to_string()).unwrap();
        prop_assert_eq!(back, d);
    }

    /// Formula display → parse is the identity, and evaluation with
    /// constant resolver is precedence-correct against a shadow evaluator.
    #[test]
    fn formula_roundtrip_and_eval(
        ops in prop::collection::vec((0usize..4, 1.0f64..50.0), 1..6),
        first in 1.0f64..50.0,
    ) {
        let op_chars = ['+', '-', '*', '/'];
        let mut text = format!("{first}");
        for (o, v) in &ops {
            text.push_str(&format!(" {} {}", op_chars[*o], v));
        }
        let f = pmove::core::abstraction::Formula::parse(&text).unwrap();
        let back = pmove::core::abstraction::Formula::parse(&f.to_string()).unwrap();
        prop_assert_eq!(&back, &f);
        // Shadow evaluation with standard precedence.
        let mut values = vec![first];
        let mut add_ops: Vec<char> = Vec::new();
        for (o, v) in &ops {
            match op_chars[*o] {
                '*' => *values.last_mut().unwrap() *= v,
                '/' => *values.last_mut().unwrap() /= v,
                c => { add_ops.push(c); values.push(*v); }
            }
        }
        let mut expect = values[0];
        for (c, v) in add_ops.iter().zip(&values[1..]) {
            if *c == '+' { expect += v } else { expect -= v }
        }
        let got = f.eval(|_| None).unwrap_or_else(|_| f.eval(|_| Some(0.0)).unwrap());
        // No events in this formula: eval never consults the resolver.
        prop_assert!((got - expect).abs() <= 1e-9 * expect.abs().max(1.0));
    }

    /// Aggregation: mean is always within [min, max]; sum = mean × count.
    #[test]
    fn aggregate_consistency(values in prop::collection::vec(-1e9f64..1e9, 1..100)) {
        let s = pmove::tsdb::aggregate::Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!((s.sum - s.mean * s.count as f64).abs() < 1e-3 * s.sum.abs().max(1.0));
        prop_assert_eq!(s.count as usize, values.len());
    }
}

// ---------------------------------------------------------------------
// dashboards and snapshots
// ---------------------------------------------------------------------

proptest! {
    /// Dashboards with arbitrary panels/targets survive the JSON file
    /// round trip (user-editable shareable files, §III-B).
    #[test]
    fn dashboard_json_roundtrip(
        panels in prop::collection::vec(
            (arb_ident(), prop::collection::vec((arb_ident(), arb_ident()), 0..5)),
            0..6,
        ),
        id in 1u32..100,
    ) {
        use pmove::core::dashboard::model::{Dashboard, Datasource, Target};
        let mut d = Dashboard::new(id, "prop");
        for (title, targets) in panels {
            let ts = targets
                .into_iter()
                .map(|(m, f)| Target {
                    datasource: Datasource::influx("UUkm1881"),
                    measurement: m,
                    params: f,
                })
                .collect();
            d = d.panel(title, ts);
        }
        let back = Dashboard::from_json(&d.to_json()).unwrap();
        prop_assert_eq!(back, d);
    }

    /// tsdb snapshot export/import preserves every (timestamp, value).
    #[test]
    fn tsdb_snapshot_roundtrip(values in prop::collection::vec(-1e9f64..1e9, 1..40)) {
        let src = pmove::tsdb::Database::new("src");
        for (t, v) in values.iter().enumerate() {
            src.write_point(
                pmove::tsdb::Point::new("m").tag("tag", "x").field("v", *v).timestamp(t as i64),
            ).unwrap();
        }
        let doc = pmove::tsdb::snapshot::export_measurement(&src, "m", Some(("tag", "x"))).unwrap();
        let dst = pmove::tsdb::Database::new("dst");
        let n = pmove::tsdb::snapshot::import_measurement(&dst, &doc).unwrap();
        prop_assert_eq!(n, values.len());
        let got = dst.query("SELECT \"v\" FROM \"m\" WHERE tag='x'").unwrap();
        for (row, v) in got.rows.iter().zip(&values) {
            prop_assert_eq!(row.values["v"], Some(*v));
        }
    }

    /// DTMI hierarchy laws: child ∘ parent is the identity; is_within is
    /// reflexive and respects ancestry.
    #[test]
    fn dtmi_hierarchy_laws(
        segs in prop::collection::vec("[a-z][a-z0-9]{0,6}", 1..4),
        extra in "[a-z][a-z0-9]{0,6}",
        version in 1u32..20,
    ) {
        let base = pmove::jsonld::Dtmi::new(segs, version).unwrap();
        let child = base.child(&extra).unwrap();
        prop_assert_eq!(child.parent().unwrap(), base.clone());
        prop_assert!(child.is_within(&base));
        prop_assert!(base.is_within(&base));
        prop_assert!(!base.is_within(&child));
        prop_assert_eq!(child.depth(), base.depth() + 1);
        prop_assert_eq!(child.local_name(), extra);
    }
}

// ---------------------------------------------------------------------
// hwsim: execution-model invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Windows always partition the totals, whatever the window split.
    #[test]
    fn execution_windows_partition(
        flops in 1u64..1_000_000_000,
        loads in 1u64..1_000_000_000,
        cut in 0.0f64..1.0,
    ) {
        use pmove::hwsim::kernel_profile::{KernelProfile, Precision};
        use pmove::hwsim::vendor::IsaExt;
        let p = KernelProfile::named("prop")
            .with_threads(4)
            .with_flops(IsaExt::Avx2, Precision::F64, flops)
            .with_mem(loads, loads / 2, IsaExt::Avx2)
            .with_working_set(1 << 26);
        let exec = pmove::hwsim::ExecModel::new(pmove::hwsim::MachineSpec::icl()).run(&p, 1.0);
        let q = pmove::hwsim::Quantity::LoadInstr;
        let total = exec.quantity_total(q);
        let mid = exec.start_s + exec.duration_s * cut;
        let a = exec.quantity_in_window(q, 0.0, mid);
        let b = exec.quantity_in_window(q, mid, 1e12);
        prop_assert!((a + b - total).abs() < 1e-6 * total.max(1.0));
        // Thread shares are a partition of unity over active threads.
        let share_sum: f64 = (0..4).map(|i| exec.thread_share(i)).sum();
        prop_assert!((share_sum - 1.0).abs() < 1e-9);
    }
}
